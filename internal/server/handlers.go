package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sympack/internal/core"
	"sympack/internal/krylov"
	"sympack/internal/machine"
	"sympack/internal/matrix"
	"sympack/internal/metrics"
	"sympack/internal/precond"
)

// StatusClientClosedRequest is the nginx-convention status for a request
// whose own context was canceled (as opposed to a deadline the server
// enforced, which is 504).
const StatusClientClosedRequest = 499

// WireMatrix is the JSON encoding of a sparse SPD matrix in the same
// compressed lower-triangular layout matrix.SparseSym uses.
type WireMatrix struct {
	N      int       `json:"n"`
	ColPtr []int32   `json:"colptr"`
	RowInd []int32   `json:"rowind"`
	Val    []float64 `json:"val,omitempty"`
}

func (w *WireMatrix) toSym(needValues bool) (*matrix.SparseSym, error) {
	a := &matrix.SparseSym{N: w.N, ColPtr: w.ColPtr, RowInd: w.RowInd, Val: w.Val}
	if needValues {
		if len(a.Val) != len(a.RowInd) {
			return nil, fmt.Errorf("server: %d values for %d stored entries", len(a.Val), len(a.RowInd))
		}
	} else if a.Val == nil {
		// Pattern-only requests (analyze) may omit values entirely.
		a.Val = make([]float64, len(a.RowInd))
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// AnalyzeRequest asks for the symbolic analysis of a pattern.
type AnalyzeRequest struct {
	Matrix WireMatrix `json:"matrix"`
}

// AnalyzeResponse reports the analysis and its cache identity.
type AnalyzeResponse struct {
	Pattern    string `json:"pattern"`
	Cached     bool   `json:"cached"`
	N          int    `json:"n"`
	Supernodes int    `json:"supernodes"`
	Blocks     int    `json:"blocks"`
	NnzL       int64  `json:"nnz_l"`
	FactorFlop int64  `json:"factor_flop"`
}

// FactorRequest asks for a numeric factorization.
type FactorRequest struct {
	Matrix WireMatrix `json:"matrix"`
	// Ranks/Workers/GPUs override the server's baseline solver options
	// when positive.
	Ranks   int `json:"ranks,omitempty"`
	Workers int `json:"workers,omitempty"`
	GPUs    int `json:"gpus,omitempty"`
	// DeadlineMillis bounds this request; 0 falls back to the server
	// default.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// FactorResponse reports the factorization and the id solves reference.
type FactorResponse struct {
	Factor      string  `json:"factor"` // cache id: pattern + value hash
	Pattern     string  `json:"pattern"`
	Cached      bool    `json:"cached"`
	CPUOnly     bool    `json:"cpu_only"` // true when the breaker routed around devices
	NnzL        int64   `json:"nnz_l"`
	WallSeconds float64 `json:"wall_seconds"`
	GFlops      float64 `json:"gflops,omitempty"`
}

// SolveRequest solves with a previously factored matrix.
type SolveRequest struct {
	Factor string    `json:"factor"`
	B      []float64 `json:"b"`
}

// SolveResponse carries the solution.
type SolveResponse struct {
	X []float64 `json:"x"`
}

// SolveBatchRequest solves many right-hand sides against one factor.
type SolveBatchRequest struct {
	Factor string      `json:"factor"`
	Bs     [][]float64 `json:"bs"`
}

// SolveBatchResponse carries the solutions in request order.
type SolveBatchResponse struct {
	Xs [][]float64 `json:"xs"`
}

// SolveCGRequest runs an iterative solve: conjugate gradients on the posted
// matrix, optionally preconditioned by a blocked IC(k) factor the server
// builds through the engine and caches alongside analyses and factors.
type SolveCGRequest struct {
	Matrix WireMatrix `json:"matrix"`
	B      []float64  `json:"b"`
	// Solver is "cg" (unpreconditioned) or "pcg" (IC(k) preconditioned);
	// default "pcg".
	Solver string `json:"solver,omitempty"`
	// Precision selects the preconditioner factorization precision:
	// "fp64" (default) or "fp32" (single-precision kernels with
	// transparent fp64 retry on breakdown).
	Precision string `json:"precision,omitempty"`
	// ICLevel is the IC(k) fill level (pcg only; default 0).
	ICLevel int `json:"ic_level,omitempty"`
	// DropTol magnitude-filters the matrix before level expansion.
	DropTol float64 `json:"drop_tol,omitempty"`
	// Rtol is the relative convergence tolerance (0 = 1e-8).
	Rtol float64 `json:"rtol,omitempty"`
	// MaxIter bounds the iteration count (0 = driver default).
	MaxIter int `json:"max_iter,omitempty"`
	// DeadlineMillis bounds this request; 0 falls back to the server
	// default.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// SolveCGResponse carries the iterative solution and its convergence record.
type SolveCGResponse struct {
	X          []float64 `json:"x"`
	Iterations int       `json:"iterations"`
	MatVecs    int       `json:"matvecs"`
	Residual   float64   `json:"residual"`
	Converged  bool      `json:"converged"`
	// Precond is the cache id of the IC factor used (pcg only), Cached
	// whether it was served from the LRU, Shift the diagonal shift the
	// incomplete factorization needed (0 when unshifted).
	Precond       string  `json:"precond,omitempty"`
	PrecondCached bool    `json:"precond_cached,omitempty"`
	Shift         float64 `json:"shift,omitempty"`
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

// httpError is an error with a chosen status code, produced by the
// pipeline stages and rendered by wrap.
type httpError struct {
	code int
	err  error
	// retryAfter, when > 0, emits a Retry-After header (shed responses).
	retryAfter int
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// wrap is the endpoint middleware: it tracks the in-flight WaitGroup,
// refuses work while draining, times the request into the latency ring and
// the per-endpoint histogram, and renders errors uniformly.
func (s *Server) wrap(endpoint string, h func(*http.Request) (any, *httpError)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.reply(w, endpoint, http.StatusServiceUnavailable, apiError{Error: "server is draining"}, 0)
			return
		}
		s.wg.Add(1)
		defer s.wg.Done()
		start := machine.WallNow()
		body, herr := h(r)
		elapsed := machine.WallSince(start).Seconds()
		s.ring.observe(elapsed)
		s.met.Latency(endpoint).Observe(elapsed)
		if herr != nil {
			s.reply(w, endpoint, herr.code, apiError{Error: herr.err.Error()}, herr.retryAfter)
			return
		}
		s.reply(w, endpoint, http.StatusOK, body, 0)
	}
}

// reply renders one JSON response and records the request counter.
func (s *Server) reply(w http.ResponseWriter, endpoint string, code int, body any, retryAfter int) {
	s.met.Request(endpoint, strconv.Itoa(code)).Inc()
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

// handleMetrics serves the server registry as a Prometheus exposition on
// the daemon's own mux (the optional -metrics-addr sidecar listener serves
// the same registry through metrics.Serve).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := metrics.WriteText(&buf, s.cfg.Registry.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", metrics.ContentType)
	_, _ = w.Write(buf.Bytes())
}

// admit runs the shared front of the pipeline: request sequencing, chaos
// context shaping, deadline installation, and admission control. On
// success it returns the request context and a done function releasing
// the slot (and any context resources); on failure, the mapped error.
func (s *Server) admit(r *http.Request, deadlineMillis int64) (context.Context, func(), *httpError) {
	seq := int(s.seq.Add(1))
	ctx := r.Context()
	cancels := []context.CancelFunc{}

	if d := deadlineMillis; d > 0 {
		c, cancel := context.WithTimeout(ctx, time.Duration(d)*time.Millisecond)
		ctx, cancels = c, append(cancels, cancel)
	} else if s.cfg.DefaultDeadline > 0 {
		c, cancel := context.WithTimeout(ctx, s.cfg.DefaultDeadline)
		ctx, cancels = c, append(cancels, cancel)
	}
	if s.inj != nil && s.inj.CanceledRequest(seq) {
		// Chaos: this client goes away mid-flight. The cancel fires from
		// a goroutine after a few stall windows so the request is usually
		// admitted and inside the engine when it lands.
		c, cancel := context.WithCancel(ctx)
		ctx, cancels = c, append(cancels, cancel)
		delay := 4 * s.inj.Plan().StallWindow
		go func() {
			machine.Backoff(delay)
			cancel()
		}()
	}
	release := func() {
		for _, c := range cancels {
			c()
		}
	}

	if err := s.adm.enter(ctx); err != nil {
		release()
		if errors.Is(err, errShed) {
			return nil, nil, &httpError{
				code:       http.StatusTooManyRequests,
				err:        err,
				retryAfter: retryAfterSeconds(s.ring, s.adm),
			}
		}
		return nil, nil, s.ctxError(ctx, err)
	}
	if s.inj != nil {
		if d := s.inj.SlowClientDelay(seq); d > 0 {
			machine.Backoff(d)
		}
	}
	done := func() {
		s.adm.leave()
		release()
	}
	// The chaos thrash hook runs after admission so the eviction races
	// the request's own cache lookups, which is the scenario worth
	// testing; seq is pinned here so handlers can thrash their keys.
	ctx = context.WithValue(ctx, ctxKeySeq{}, seq)
	return ctx, done, nil
}

// ctxKeySeq carries the request sequence number for chaos decisions.
type ctxKeySeq struct{}

// thrashFor applies the CacheThrash chaos class to the request's keys.
func (s *Server) thrashFor(ctx context.Context, keys ...string) {
	if s.inj == nil {
		return
	}
	seq, _ := ctx.Value(ctxKeySeq{}).(int)
	if s.inj.CacheThrash(seq) {
		s.cache.thrash(keys...)
	}
}

// ctxError maps a context failure onto the status vocabulary: a deadline
// the server enforced is 504 (the server answers for it), a client that
// went away is 499.
func (s *Server) ctxError(ctx context.Context, err error) *httpError {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) || errors.Is(err, context.DeadlineExceeded) {
		s.met.DeadlineMiss.Inc()
		return &httpError{code: http.StatusGatewayTimeout, err: err}
	}
	s.met.Canceled.Inc()
	return &httpError{code: StatusClientClosedRequest, err: err}
}

// engineError maps a factorization/solve failure onto a status code.
func (s *Server) engineError(ctx context.Context, err error) *httpError {
	switch {
	case errors.Is(err, core.ErrCanceled):
		return s.ctxError(ctx, err)
	case errors.Is(err, core.ErrNotPositiveDefinite):
		return &httpError{code: http.StatusUnprocessableEntity, err: err}
	default:
		return &httpError{code: http.StatusInternalServerError, err: err}
	}
}

// decode parses a JSON request body.
func decode[T any](r *http.Request) (*T, *httpError) {
	var v T
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&v); err != nil {
		return nil, &httpError{code: http.StatusBadRequest, err: fmt.Errorf("bad request body: %w", err)}
	}
	return &v, nil
}

// analysisFor returns the (cached or freshly computed) analysis for a
// matrix, pinned; the caller must invoke the release.
func (s *Server) analysisFor(ctx context.Context, a *matrix.SparseSym, ph string) (*analysis, func(), bool, *httpError) {
	key := "a:" + ph
	s.thrashFor(ctx, key)
	if v, rel, ok := s.cache.get(key); ok {
		return v.(*analysis), rel, true, nil
	}
	st, pa, err := s.analyzeFn(a, s.cfg.Solver)
	if err != nil {
		return nil, nil, false, &httpError{code: http.StatusUnprocessableEntity, err: err}
	}
	an := &analysis{st: st, pa: pa}
	v, rel := s.cache.put(key, an, analysisBytes(st, pa))
	return v.(*analysis), rel, false, nil
}

// handleAnalyze serves POST /v1/analyze.
func (s *Server) handleAnalyze(r *http.Request) (any, *httpError) {
	req, herr := decode[AnalyzeRequest](r)
	if herr != nil {
		return nil, herr
	}
	a, err := req.Matrix.toSym(false)
	if err != nil {
		return nil, &httpError{code: http.StatusBadRequest, err: err}
	}
	ctx, done, herr := s.admit(r, 0)
	if herr != nil {
		return nil, herr
	}
	defer done()
	ph := patternHash(a)
	an, rel, cached, herr := s.analysisFor(ctx, a, ph)
	if herr != nil {
		return nil, herr
	}
	defer rel()
	return AnalyzeResponse{
		Pattern:    ph,
		Cached:     cached,
		N:          an.st.N,
		Supernodes: an.st.NumSupernodes(),
		Blocks:     an.st.NumBlocks(),
		NnzL:       an.st.NnzL,
		FactorFlop: an.st.FactorFlop,
	}, nil
}

// handleFactor serves POST /v1/factor: the full pipeline of admission,
// cache, breaker, retry and engine.
func (s *Server) handleFactor(r *http.Request) (any, *httpError) {
	req, herr := decode[FactorRequest](r)
	if herr != nil {
		return nil, herr
	}
	a, err := req.Matrix.toSym(true)
	if err != nil {
		return nil, &httpError{code: http.StatusBadRequest, err: err}
	}
	ctx, done, herr := s.admit(r, req.DeadlineMillis)
	if herr != nil {
		return nil, herr
	}
	defer done()

	ph := patternHash(a)
	fid := ph + "-" + valueHash(a)
	fkey := "f:" + fid
	s.thrashFor(ctx, fkey)
	if v, rel, ok := s.cache.get(fkey); ok {
		defer rel()
		f := v.(*core.Factor)
		return FactorResponse{Factor: fid, Pattern: ph, Cached: true, NnzL: f.Stats.NnzL}, nil
	}

	an, arel, _, herr := s.analysisFor(ctx, a, ph)
	if herr != nil {
		return nil, herr
	}
	defer arel()

	opt := s.cfg.Solver
	if req.Ranks > 0 {
		opt.Ranks = req.Ranks
	}
	if req.Workers > 0 {
		opt.Workers = req.Workers
	}
	if req.GPUs > 0 {
		opt.GPUsPerNode = req.GPUs
	}
	opt.Context = ctx
	opt.Faults = s.cfg.SolverChaos

	useGPU, probe := s.brk.acquire()
	if !useGPU {
		opt.GPUsPerNode = 0
	}
	f, err := s.factorWithRetry(ctx, an, opt)
	s.brk.result(err, probe)
	if err != nil {
		return nil, s.engineError(ctx, err)
	}
	// The cached Factor outlives this request: drop the request-scoped
	// context and fault plan before anyone else can see it.
	f.Opt.Context = nil
	f.Opt.Faults = nil
	_ = f.CloseMetrics()
	_, frel := s.cache.put(fkey, f, factorBytes(f.Data))
	defer frel()

	resp := FactorResponse{
		Factor:      fid,
		Pattern:     ph,
		CPUOnly:     !useGPU && (s.cfg.Solver.GPUsPerNode > 0 || req.GPUs > 0),
		NnzL:        f.Stats.NnzL,
		WallSeconds: f.Stats.Wall.Seconds(),
	}
	if f.Stats.ModelSeconds > 0 {
		resp.GFlops = float64(f.Stats.FactorFlop) / f.Stats.ModelSeconds / 1e9
	}
	return resp, nil
}

// factorWithRetry runs the engine, absorbing transient-fault failures with
// bounded backoff. The engine already retries transient faults internally;
// this outer loop is the second line of defense for runs that still
// surface ErrTransient.
func (s *Server) factorWithRetry(ctx context.Context, an *analysis, opt core.Options) (*core.Factor, error) {
	backoff := 10 * time.Millisecond
	for attempt := 0; ; attempt++ {
		f, err := s.factorFn(an.st, an.pa, opt)
		if err == nil || attempt >= 2 || !errors.Is(err, core.ErrTransient) {
			return f, err
		}
		s.met.Retries.Inc()
		machine.Backoff(backoff)
		backoff *= 2
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("%w: %v", core.ErrCanceled, cerr)
		}
	}
}

// factorRef resolves a solve request's factor id to a pinned Factor.
func (s *Server) factorRef(id string) (*core.Factor, func(), *httpError) {
	if id == "" {
		return nil, nil, &httpError{code: http.StatusBadRequest, err: errors.New("missing factor id")}
	}
	v, rel, ok := s.cache.get("f:" + id)
	if !ok {
		return nil, nil, &httpError{
			code: http.StatusNotFound,
			err:  fmt.Errorf("factor %s not cached (evicted or never computed); POST /v1/factor again", id),
		}
	}
	return v.(*core.Factor), rel, nil
}

// handleSolve serves POST /v1/solve.
func (s *Server) handleSolve(r *http.Request) (any, *httpError) {
	req, herr := decode[SolveRequest](r)
	if herr != nil {
		return nil, herr
	}
	ctx, done, herr := s.admit(r, 0)
	if herr != nil {
		return nil, herr
	}
	defer done()
	s.thrashFor(ctx, "f:"+req.Factor)
	f, rel, herr := s.factorRef(req.Factor)
	if herr != nil {
		return nil, herr
	}
	defer rel()
	if len(req.B) != f.St.N {
		return nil, &httpError{code: http.StatusBadRequest,
			err: fmt.Errorf("rhs has %d entries, factor is %d×%d", len(req.B), f.St.N, f.St.N)}
	}
	x, err := f.SolveCtx(ctx, req.B)
	if err != nil {
		return nil, s.engineError(ctx, err)
	}
	return SolveResponse{X: x}, nil
}

// precondFor returns the (cached or freshly factored) IC(k) preconditioner
// for a matrix, pinned; the caller must invoke the release. The cache key
// includes the value hash — unlike an analysis, an incomplete factor is a
// numeric object — and the fill level.
func (s *Server) precondFor(ctx context.Context, a *matrix.SparseSym, id string, req *SolveCGRequest) (*precond.ICFactor, func(), bool, *httpError) {
	key := "p:" + id
	s.thrashFor(ctx, key)
	if v, rel, ok := s.cache.get(key); ok {
		return v.(*precond.ICFactor), rel, true, nil
	}
	opt := s.cfg.Solver
	if req.Precision != "" {
		prec, err := core.ParsePrecision(req.Precision)
		if err != nil {
			return nil, nil, false, &httpError{code: http.StatusBadRequest, err: err}
		}
		opt.Precision = prec
	}
	opt.Context = ctx
	opt.Faults = s.cfg.SolverChaos

	useGPU, probe := s.brk.acquire()
	if !useGPU {
		opt.GPUsPerNode = 0
	}
	ic, err := precond.NewIC(a, precond.Options{Level: req.ICLevel, DropTol: req.DropTol, Core: opt})
	s.brk.result(err, probe)
	if err != nil {
		switch {
		case errors.Is(err, precond.ErrBreakdown):
			return nil, nil, false, &httpError{code: http.StatusUnprocessableEntity, err: err}
		default:
			return nil, nil, false, s.engineError(ctx, err)
		}
	}
	// The cached preconditioner outlives this request: drop the
	// request-scoped context and fault plan before anyone else can see it.
	ic.F.Opt.Context = nil
	ic.F.Opt.Faults = nil
	_ = ic.F.CloseMetrics()
	v, rel := s.cache.put(key, ic, ic.Bytes())
	return v.(*precond.ICFactor), rel, false, nil
}

// handleSolveCG serves POST /v1/solvecg: admission, preconditioner cache,
// breaker-guarded incomplete factorization, then the PCG driver under the
// request's deadline.
func (s *Server) handleSolveCG(r *http.Request) (any, *httpError) {
	req, herr := decode[SolveCGRequest](r)
	if herr != nil {
		return nil, herr
	}
	a, err := req.Matrix.toSym(true)
	if err != nil {
		return nil, &httpError{code: http.StatusBadRequest, err: err}
	}
	if len(req.B) != a.N {
		return nil, &httpError{code: http.StatusBadRequest,
			err: fmt.Errorf("rhs has %d entries, matrix is %d×%d", len(req.B), a.N, a.N)}
	}
	solver := req.Solver
	if solver == "" {
		solver = "pcg"
	}
	if solver != "cg" && solver != "pcg" {
		return nil, &httpError{code: http.StatusBadRequest,
			err: fmt.Errorf("unknown solver %q (want cg or pcg)", solver)}
	}
	ctx, done, herr := s.admit(r, req.DeadlineMillis)
	if herr != nil {
		return nil, herr
	}
	defer done()

	resp := SolveCGResponse{}
	kopt := krylov.Options{
		Rtol:    req.Rtol,
		MaxIter: req.MaxIter,
		Ctx:     ctx,
		Metrics: metrics.NewIterMetrics(s.cfg.Registry),
	}
	if solver == "pcg" {
		id := patternHash(a) + "-" + valueHash(a) + "-l" + strconv.Itoa(req.ICLevel)
		ic, rel, cached, herr := s.precondFor(ctx, a, id, req)
		if herr != nil {
			return nil, herr
		}
		defer rel()
		kopt.Precond = ic
		resp.Precond = id
		resp.PrecondCached = cached
		resp.Shift = ic.Shift
	}
	res, err := krylov.Solve(a, req.B, kopt)
	if err != nil {
		switch {
		case errors.Is(err, krylov.ErrIndefinite), errors.Is(err, krylov.ErrNoConvergence):
			return nil, &httpError{code: http.StatusUnprocessableEntity, err: err}
		default:
			return nil, s.ctxError(ctx, err)
		}
	}
	resp.X = res.X
	resp.Iterations = res.Iterations
	resp.MatVecs = res.MatVecs
	resp.Residual = res.Residual
	resp.Converged = res.Converged
	return resp, nil
}

// handleSolveBatch serves POST /v1/solvebatch: many right-hand sides
// against one pinned factor, one admission slot.
func (s *Server) handleSolveBatch(r *http.Request) (any, *httpError) {
	req, herr := decode[SolveBatchRequest](r)
	if herr != nil {
		return nil, herr
	}
	ctx, done, herr := s.admit(r, 0)
	if herr != nil {
		return nil, herr
	}
	defer done()
	s.thrashFor(ctx, "f:"+req.Factor)
	f, rel, herr := s.factorRef(req.Factor)
	if herr != nil {
		return nil, herr
	}
	defer rel()
	for i, b := range req.Bs {
		if len(b) != f.St.N {
			return nil, &httpError{code: http.StatusBadRequest,
				err: fmt.Errorf("rhs %d has %d entries, factor is %d×%d", i, len(b), f.St.N, f.St.N)}
		}
	}
	xs, err := f.SolveMultiCtx(ctx, req.Bs)
	if err != nil {
		return nil, s.engineError(ctx, err)
	}
	return SolveBatchResponse{Xs: xs}, nil
}
