package server

import (
	"math/rand"
	"net/http"
	"testing"

	"sympack/internal/gen"
	"sympack/internal/matrix"
)

func cgRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

func TestSolveCGEndToEnd(t *testing.T) {
	s := startServer(t, Config{})
	a := gen.Laplace2D(12, 12)
	b := cgRHS(a.N, 1)

	var pcg SolveCGResponse
	code, _ := post(t, s.Addr(), "/v1/solvecg", SolveCGRequest{
		Matrix: wire(a), B: b, Solver: "pcg", ICLevel: 1, Rtol: 1e-9,
	}, &pcg)
	if code != http.StatusOK || !pcg.Converged {
		t.Fatalf("pcg: code=%d converged=%v", code, pcg.Converged)
	}
	if pcg.PrecondCached {
		t.Fatal("first pcg request cannot hit the preconditioner cache")
	}
	// Verify against the matrix directly.
	r := a.MulVec(pcg.X)
	var rr, bb float64
	for i := range b {
		d := b[i] - r[i]
		rr += d * d
		bb += b[i] * b[i]
	}
	if rr/bb > 1e-14 {
		t.Fatalf("pcg solution residual too large: %g", rr/bb)
	}

	var cg SolveCGResponse
	code, _ = post(t, s.Addr(), "/v1/solvecg", SolveCGRequest{
		Matrix: wire(a), B: b, Solver: "cg", Rtol: 1e-9,
	}, &cg)
	if code != http.StatusOK || !cg.Converged {
		t.Fatalf("cg: code=%d converged=%v", code, cg.Converged)
	}
	if cg.Precond != "" {
		t.Fatalf("cg response reports a preconditioner id %q", cg.Precond)
	}
	if pcg.MatVecs >= cg.MatVecs {
		t.Fatalf("pcg took %d matvecs, cg %d; IC(1) must accelerate", pcg.MatVecs, cg.MatVecs)
	}

	// Same matrix + level again: the preconditioner must come from cache.
	var again SolveCGResponse
	code, _ = post(t, s.Addr(), "/v1/solvecg", SolveCGRequest{
		Matrix: wire(a), B: b, Solver: "pcg", ICLevel: 1, Rtol: 1e-9,
	}, &again)
	if code != http.StatusOK || !again.PrecondCached {
		t.Fatalf("repeat pcg: code=%d cached=%v", code, again.PrecondCached)
	}
	if again.Precond != pcg.Precond {
		t.Fatalf("preconditioner id changed: %q vs %q", again.Precond, pcg.Precond)
	}
}

func TestSolveCGBadRequests(t *testing.T) {
	s := startServer(t, Config{})
	a := gen.Laplace2D(4, 4)
	b := cgRHS(a.N, 2)

	code, _ := post(t, s.Addr(), "/v1/solvecg", SolveCGRequest{
		Matrix: wire(a), B: b[:3],
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("short rhs: code=%d, want 400", code)
	}
	code, _ = post(t, s.Addr(), "/v1/solvecg", SolveCGRequest{
		Matrix: wire(a), B: b, Solver: "gmres",
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown solver: code=%d, want 400", code)
	}
	code, _ = post(t, s.Addr(), "/v1/solvecg", SolveCGRequest{
		Matrix: wire(a), B: b, Precision: "fp13",
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown precision: code=%d, want 400", code)
	}
}

func TestSolveCGIndefiniteIs422(t *testing.T) {
	s := startServer(t, Config{})
	// An indefinite matrix: CG curvature breakdown must map to 422.
	c := matrix.NewCOO(6)
	for i := 0; i < 6; i++ {
		d := 1.0
		if i == 3 {
			d = -1
		}
		c.Add(i, i, d)
	}
	a, err := c.ToSym()
	if err != nil {
		t.Fatal(err)
	}
	b := cgRHS(a.N, 3)
	code, _ := post(t, s.Addr(), "/v1/solvecg", SolveCGRequest{
		Matrix: wire(a), B: b, Solver: "cg",
	}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("indefinite cg: code=%d, want 422", code)
	}
}

func TestSolveCGNoConvergenceIs422(t *testing.T) {
	s := startServer(t, Config{})
	a := gen.Laplace2D(10, 10)
	b := cgRHS(a.N, 4)
	code, _ := post(t, s.Addr(), "/v1/solvecg", SolveCGRequest{
		Matrix: wire(a), B: b, Solver: "cg", Rtol: 1e-12, MaxIter: 2,
	}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("budget exhaustion: code=%d, want 422", code)
	}
}

func TestSolveCGFp32Precision(t *testing.T) {
	s := startServer(t, Config{})
	a := gen.Laplace2D(10, 10)
	b := cgRHS(a.N, 5)
	var resp SolveCGResponse
	code, _ := post(t, s.Addr(), "/v1/solvecg", SolveCGRequest{
		Matrix: wire(a), B: b, Solver: "pcg", ICLevel: 1, Precision: "fp32", Rtol: 1e-8,
	}, &resp)
	if code != http.StatusOK || !resp.Converged {
		t.Fatalf("fp32 pcg: code=%d converged=%v", code, resp.Converged)
	}
}
