package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"sympack/internal/core"
	"sympack/internal/gen"
	"sympack/internal/matrix"
	"sympack/internal/metrics"
	"sympack/internal/symbolic"
)

// wire converts a matrix to its JSON form.
func wire(a *matrix.SparseSym) WireMatrix {
	return WireMatrix{N: a.N, ColPtr: a.ColPtr, RowInd: a.RowInd, Val: a.Val}
}

// startServer boots a Server on an ephemeral port and tears it down with
// the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// post sends a JSON request and decodes the response into out (which may
// be nil to ignore the body). It returns the status code and headers.
func post(t *testing.T, addr, path string, body, out any) (int, http.Header) {
	t.Helper()
	code, hdr, err := postCtx(context.Background(), addr, path, body, out)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	return code, hdr
}

func postCtx(ctx context.Context, addr, path string, body, out any) (int, http.Header, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", "http://"+addr+path, bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, resp.Header, err
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, resp.Header, fmt.Errorf("body %q: %w", raw, err)
		}
	}
	return resp.StatusCode, resp.Header, nil
}

func getHealth(t *testing.T, addr string) (int, Health) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, h
}

func TestAnalyzeFactorSolveRoundtrip(t *testing.T) {
	s := startServer(t, Config{})
	a := gen.Laplace2D(8, 8)

	var ar AnalyzeResponse
	if code, _ := post(t, s.Addr(), "/v1/analyze", AnalyzeRequest{Matrix: wire(a)}, &ar); code != 200 {
		t.Fatalf("analyze status %d", code)
	}
	if ar.Pattern == "" || ar.N != a.N || ar.NnzL <= int64(a.Nnz()) {
		t.Fatalf("analyze response %+v", ar)
	}
	if ar.Cached {
		t.Fatal("first analyze claims a cache hit")
	}

	var fr FactorResponse
	if code, _ := post(t, s.Addr(), "/v1/factor", FactorRequest{Matrix: wire(a)}, &fr); code != 200 {
		t.Fatalf("factor status %d", code)
	}
	if fr.Pattern != ar.Pattern {
		t.Fatalf("factor pattern %s != analyze pattern %s", fr.Pattern, ar.Pattern)
	}
	if fr.Cached {
		t.Fatal("first factor claims a cache hit")
	}

	// Same matrix again: served from cache.
	var fr2 FactorResponse
	post(t, s.Addr(), "/v1/factor", FactorRequest{Matrix: wire(a)}, &fr2)
	if !fr2.Cached || fr2.Factor != fr.Factor {
		t.Fatalf("re-factor response %+v, want cache hit on %s", fr2, fr.Factor)
	}

	// Same pattern, different values: analysis reused, factor recomputed
	// under a distinct id.
	b2 := a.Clone()
	for i := range b2.Val {
		b2.Val[i] *= 1.5
	}
	var fr3 FactorResponse
	post(t, s.Addr(), "/v1/factor", FactorRequest{Matrix: wire(b2)}, &fr3)
	if fr3.Cached || fr3.Factor == fr.Factor || fr3.Pattern != fr.Pattern {
		t.Fatalf("scaled-values factor %+v vs original %s", fr3, fr.Factor)
	}

	// Solve against the cached factor and check the residual for real.
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = float64(i%7) + 1
	}
	var sr SolveResponse
	if code, _ := post(t, s.Addr(), "/v1/solve", SolveRequest{Factor: fr.Factor, B: rhs}, &sr); code != 200 {
		t.Fatalf("solve status %d", code)
	}
	if res := core.ResidualNorm(a, sr.X, rhs); res > 1e-10 {
		t.Fatalf("residual %g", res)
	}

	// Batched multi-RHS.
	var br SolveBatchResponse
	if code, _ := post(t, s.Addr(), "/v1/solvebatch",
		SolveBatchRequest{Factor: fr.Factor, Bs: [][]float64{rhs, rhs}}, &br); code != 200 {
		t.Fatalf("solvebatch status %d", code)
	}
	if len(br.Xs) != 2 {
		t.Fatalf("%d solutions, want 2", len(br.Xs))
	}
	for i, x := range br.Xs {
		if res := core.ResidualNorm(a, x, rhs); res > 1e-10 {
			t.Fatalf("batch rhs %d residual %g", i, res)
		}
	}

	// An unknown factor id is 404, not 500.
	var apiErr apiError
	if code, _ := post(t, s.Addr(), "/v1/solve",
		SolveRequest{Factor: "deadbeef-deadbeef", B: rhs}, &apiErr); code != http.StatusNotFound {
		t.Fatalf("unknown factor status %d, want 404", code)
	}

	// Garbage input is 400.
	if code, _ := post(t, s.Addr(), "/v1/factor",
		FactorRequest{Matrix: WireMatrix{N: -3}}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad matrix status %d, want 400", code)
	}

	// The server's own /metrics endpoint serves a valid exposition with
	// the request counters in it.
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if _, _, err := metrics.ValidateExposition(bytes.NewReader(expo)); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for _, want := range []string{
		`sympack_server_requests_total{endpoint="factor",code="200"}`,
		`sympack_server_requests_total{endpoint="solve",code="404"}`,
		"sympack_server_cache_hits_total",
	} {
		if !bytes.Contains(expo, []byte(want)) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// blockingEngine is a factorFn seam that parks until released or the
// request context ends, then delegates to the real engine.
type blockingEngine struct {
	mu      sync.Mutex
	gate    chan struct{} // closed to release all parked calls
	started chan struct{} // receives one token per call that parked
}

func newBlockingEngine(buffer int) *blockingEngine {
	return &blockingEngine{gate: make(chan struct{}), started: make(chan struct{}, buffer)}
}

func (e *blockingEngine) factor(st *symbolic.Structure, pa *matrix.SparseSym, opt core.Options) (*core.Factor, error) {
	e.started <- struct{}{}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-e.gate:
		return core.FactorizeAnalyzed(st, pa, opt)
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: %v", core.ErrCanceled, ctx.Err())
	}
}

func (e *blockingEngine) release() {
	e.mu.Lock()
	select {
	case <-e.gate:
	default:
		close(e.gate)
	}
	e.mu.Unlock()
}

// TestDeadlineReturns504AndLeavesCacheConsistent is the ISSUE acceptance
// path: a factorization that cannot finish inside its deadline comes back
// as 504 within 2× the deadline, and a follow-up request for the same
// pattern succeeds cleanly — the canceled run never poisons the cache.
func TestDeadlineReturns504AndLeavesCacheConsistent(t *testing.T) {
	s := startServer(t, Config{})
	eng := newBlockingEngine(4)
	s.factorFn = eng.factor

	a := gen.Laplace2D(8, 8)
	const deadline = 300 * time.Millisecond
	start := time.Now()
	var apiErr apiError
	code, _ := post(t, s.Addr(), "/v1/factor",
		FactorRequest{Matrix: wire(a), DeadlineMillis: int64(deadline / time.Millisecond)}, &apiErr)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", code, apiErr.Error)
	}
	if elapsed > 2*deadline {
		t.Fatalf("deadline-exceeded response took %v, want within 2×%v", elapsed, deadline)
	}
	if got := s.met.DeadlineMiss.Value(); got != 1 {
		t.Fatalf("deadline-miss counter = %g, want 1", got)
	}

	// The follow-up on the same pattern succeeds once the engine runs
	// freely, and nothing half-finished was cached in between.
	eng.release()
	var fr FactorResponse
	if code, _ := post(t, s.Addr(), "/v1/factor", FactorRequest{Matrix: wire(a)}, &fr); code != 200 {
		t.Fatalf("follow-up factor status %d", code)
	}
	if fr.Cached {
		t.Fatal("canceled factorization left a cached Factor behind")
	}
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	var sr SolveResponse
	post(t, s.Addr(), "/v1/solve", SolveRequest{Factor: fr.Factor, B: rhs}, &sr)
	if res := core.ResidualNorm(a, sr.X, rhs); res > 1e-10 {
		t.Fatalf("residual after recovery %g", res)
	}
}

// TestShedAndHealthUnderSaturation drives the admission gate past 2× its
// capacity: excess arrivals shed with 429 + Retry-After while /healthz
// reports 503, and both recover once the flood drains.
func TestShedAndHealthUnderSaturation(t *testing.T) {
	s := startServer(t, Config{InflightCap: 2, QueueCap: 2})
	eng := newBlockingEngine(16)
	s.factorFn = eng.factor
	a := gen.Laplace2D(8, 8)

	// Fill every slot and every queue position with requests on distinct
	// values (distinct factor keys, shared pattern).
	results := make(chan int, 16)
	launch := func(scale float64) {
		m := a.Clone()
		for i := range m.Val {
			m.Val[i] *= scale
		}
		go func() {
			code, _, err := postCtx(context.Background(), s.Addr(), "/v1/factor",
				FactorRequest{Matrix: wire(m)}, nil)
			if err != nil {
				code = -1
			}
			results <- code
		}()
	}
	for i := 0; i < 2; i++ {
		launch(1 + float64(i))
		<-eng.started // wait until it is inside the engine
	}
	for i := 0; i < 2; i++ {
		launch(10 + float64(i))
	}
	waitFor(t, func() bool { _, q := s.adm.occupancy(); return q == 2 })

	// Saturated: readiness is 503 before the next arrival is even made.
	if code, h := getHealth(t, s.Addr()); code != http.StatusServiceUnavailable || h.OK {
		t.Fatalf("saturated healthz = %d %+v, want 503", code, h)
	}

	// Arrivals beyond 2× capacity shed with 429 and a sane Retry-After.
	var apiErr apiError
	m := a.Clone()
	for i := range m.Val {
		m.Val[i] *= 99
	}
	code, hdr := post(t, s.Addr(), "/v1/factor", FactorRequest{Matrix: wire(m)}, &apiErr)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload status %d (%s), want 429", code, apiErr.Error)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After %q, want an integer in [1,60]", hdr.Get("Retry-After"))
	}
	if got := s.met.Shed.Value(); got < 1 {
		t.Fatalf("shed counter = %g", got)
	}

	// Drain the flood: everyone admitted completes, health recovers.
	eng.release()
	for i := 0; i < 4; i++ {
		if code := <-results; code != 200 {
			t.Fatalf("flood request %d finished with %d", i, code)
		}
	}
	if code, h := getHealth(t, s.Addr()); code != http.StatusOK || !h.OK {
		t.Fatalf("recovered healthz = %d %+v, want 200", code, h)
	}
}

// TestGracefulDrain checks the SIGTERM path: Shutdown stops admitting
// (503), finishes in-flight work, and returns.
func TestGracefulDrain(t *testing.T) {
	s := startServer(t, Config{})
	eng := newBlockingEngine(4)
	s.factorFn = eng.factor
	a := gen.Laplace2D(6, 6)

	inFlight := make(chan int, 1)
	go func() {
		code, _, err := postCtx(context.Background(), s.Addr(), "/v1/factor",
			FactorRequest{Matrix: wire(a)}, nil)
		if err != nil {
			code = -1
		}
		inFlight <- code
	}()
	<-eng.started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return s.draining.Load() })

	// New work is refused while draining.
	if code, _, _ := postCtx(context.Background(), s.Addr(), "/v1/analyze",
		AnalyzeRequest{Matrix: wire(a)}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain got %d, want 503", code)
	}
	select {
	case err := <-drained:
		t.Fatalf("Shutdown returned (%v) with a request still in flight", err)
	default:
	}

	// The in-flight request runs to completion and drain finishes.
	eng.release()
	if code := <-inFlight; code != 200 {
		t.Fatalf("in-flight request finished with %d during drain", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := s.met.Draining.Value(); got != 1 {
		t.Fatalf("draining gauge = %g", got)
	}
}

// TestBreakerDegradesToCPUAndRecovers wires a device-failing engine seam
// through the HTTP path: repeated ErrDeviceFailed trips the breaker,
// while open the server serves CPU-only (degraded, not down), and the
// half-open probe closes it once devices heal.
func TestBreakerDegradesToCPUAndRecovers(t *testing.T) {
	s := startServer(t, Config{
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
		Solver:           core.Options{GPUsPerNode: 1},
	})
	var mu sync.Mutex
	devHealthy := false
	s.factorFn = func(st *symbolic.Structure, pa *matrix.SparseSym, opt core.Options) (*core.Factor, error) {
		mu.Lock()
		healthy := devHealthy
		mu.Unlock()
		if opt.GPUsPerNode > 0 && !healthy {
			return nil, fmt.Errorf("device 0: %w", core.ErrDeviceFailed)
		}
		return core.FactorizeAnalyzed(st, pa, opt)
	}
	a := gen.Laplace2D(6, 6)
	req := func(scale float64) (int, FactorResponse) {
		m := a.Clone()
		for i := range m.Val {
			m.Val[i] *= scale
		}
		var fr FactorResponse
		code, _ := post(t, s.Addr(), "/v1/factor", FactorRequest{Matrix: wire(m)}, &fr)
		return code, fr
	}

	// Two consecutive device failures → 500s and an open breaker.
	for i := 0; i < 2; i++ {
		if code, _ := req(1 + float64(i)); code != http.StatusInternalServerError {
			t.Fatalf("device-failure request %d got %d, want 500", i, code)
		}
	}
	if s.brk.snapshot() != brkOpen {
		t.Fatal("breaker not open after threshold failures")
	}
	if code, h := getHealth(t, s.Addr()); code != http.StatusServiceUnavailable || h.Breaker != "open" {
		t.Fatalf("open-breaker healthz = %d %+v", code, h)
	}

	// While open the same workload succeeds, routed around the devices.
	code, fr := req(7)
	if code != 200 || !fr.CPUOnly {
		t.Fatalf("open-breaker request = %d %+v, want 200 CPU-only", code, fr)
	}

	// Devices heal; after the cooldown one probe closes the breaker.
	mu.Lock()
	devHealthy = true
	mu.Unlock()
	time.Sleep(60 * time.Millisecond)
	if code, fr := req(8); code != 200 || fr.CPUOnly {
		t.Fatalf("probe request = %d %+v, want 200 on GPUs", code, fr)
	}
	if s.brk.snapshot() != brkClosed {
		t.Fatal("breaker did not close after a successful probe")
	}
	if code, h := getHealth(t, s.Addr()); code != http.StatusOK || h.Breaker != "closed" {
		t.Fatalf("recovered healthz = %d %+v", code, h)
	}
}

// TestEvictionMidSolveKeepsFactorUsable pins the GC-backed eviction
// contract end to end: a factor evicted while a solve holds it still
// produces a correct solution, and the next solve sees a clean 404.
func TestEvictionMidSolveKeepsFactorUsable(t *testing.T) {
	s := startServer(t, Config{})
	a := gen.Laplace2D(8, 8)
	var fr FactorResponse
	post(t, s.Addr(), "/v1/factor", FactorRequest{Matrix: wire(a)}, &fr)

	// Grab the factor exactly as a solve request does, then thrash it.
	v, rel, ok := s.cache.get("f:" + fr.Factor)
	if !ok {
		t.Fatal("factor not cached")
	}
	s.cache.thrash("f:" + fr.Factor)
	f := v.(*core.Factor)
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 2
	}
	x, err := f.SolveCtx(context.Background(), rhs)
	if err != nil {
		t.Fatalf("solve on evicted factor: %v", err)
	}
	if res := core.ResidualNorm(a, x, rhs); res > 1e-10 {
		t.Fatalf("residual on evicted factor %g", res)
	}
	rel()

	var apiErr apiError
	if code, _ := post(t, s.Addr(), "/v1/solve",
		SolveRequest{Factor: fr.Factor, B: rhs}, &apiErr); code != http.StatusNotFound {
		t.Fatalf("solve after eviction got %d, want 404", code)
	}
}

// TestFactorDeterministicAcrossCacheStates: a factor computed through the
// server equals one computed directly — the service layer must not
// perturb numeric results.
func TestFactorMatchesDirectEngine(t *testing.T) {
	s := startServer(t, Config{})
	a := gen.Laplace2D(7, 7)
	var fr FactorResponse
	post(t, s.Addr(), "/v1/factor", FactorRequest{Matrix: wire(a)}, &fr)
	v, rel, ok := s.cache.get("f:" + fr.Factor)
	if !ok {
		t.Fatal("factor not cached")
	}
	defer rel()
	served := v.(*core.Factor)

	direct, err := core.Factorize(a, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(served.Data) != len(direct.Data) {
		t.Fatalf("block counts differ: %d vs %d", len(served.Data), len(direct.Data))
	}
	for bid := range served.Data {
		for i := range served.Data[bid] {
			if sv, dv := served.Data[bid][i], direct.Data[bid][i]; sv != dv && !(math.IsNaN(sv) && math.IsNaN(dv)) {
				t.Fatalf("block %d entry %d: served %g, direct %g", bid, i, sv, dv)
			}
		}
	}
	if served.Opt.Context != nil {
		t.Fatal("cached factor retains a request context")
	}
}
