package server

import (
	"context"
	"errors"
	"sort"
	"sync"

	"sympack/internal/metrics"
)

// errShed is returned by admission.enter when the bounded queue is full —
// the load-shedding verdict the HTTP layer turns into 429 + Retry-After.
var errShed = errors.New("server: admission queue full")

// admission is the bounded concurrency gate in front of the factorization
// engine: at most `cap` requests hold a slot, at most `queueCap` more wait
// in FIFO order, and everything beyond that is shed immediately rather
// than queued into memory exhaustion. Slots transfer directly from a
// leaving request to the oldest waiter, so the gate never over- or
// under-admits during churn.
type admission struct {
	mu       sync.Mutex
	cap      int
	queueCap int
	inflight int
	waiters  []chan struct{} // FIFO; closed to transfer a slot

	met *metrics.ServerMetrics
}

func newAdmission(capacity, queueCap int, met *metrics.ServerMetrics) *admission {
	return &admission{cap: capacity, queueCap: queueCap, met: met}
}

// enter blocks until the request holds an execution slot, the context is
// done, or the queue is full. It returns nil on admission (the caller must
// leave() exactly once), errShed when shed, or the context's error.
func (a *admission) enter(ctx context.Context) error {
	a.mu.Lock()
	if a.inflight < a.cap {
		a.inflight++
		a.met.Inflight.Set(float64(a.inflight))
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.queueCap {
		a.mu.Unlock()
		a.met.Shed.Inc()
		return errShed
	}
	ch := make(chan struct{})
	a.waiters = append(a.waiters, ch)
	depth := len(a.waiters)
	a.mu.Unlock()
	a.met.QueueDepth.Set(float64(depth))
	a.met.QueuePeak.SetMax(float64(depth))

	select {
	case <-ch:
		// The leaving request transferred its slot: inflight already
		// accounts for us.
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, w := range a.waiters {
			if w == ch {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.met.QueueDepth.Set(float64(len(a.waiters)))
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// Not in the queue anymore: a slot transfer raced with the
		// cancellation. Accept it and hand it straight on.
		<-ch
		a.leave()
		return ctx.Err()
	}
}

// leave releases the caller's slot, handing it to the oldest waiter if one
// exists.
func (a *admission) leave() {
	a.mu.Lock()
	if len(a.waiters) > 0 {
		ch := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.met.QueueDepth.Set(float64(len(a.waiters)))
		a.mu.Unlock()
		close(ch)
		return
	}
	a.inflight--
	a.met.Inflight.Set(float64(a.inflight))
	a.mu.Unlock()
}

// saturated reports whether the wait queue is full — the readiness signal
// /healthz keys on: a saturated server is up but should not receive new
// traffic.
func (a *admission) saturated() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters) >= a.queueCap
}

// occupancy returns the current (inflight, queued) counts.
func (a *admission) occupancy() (inflight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, len(a.waiters)
}

// latencyRing keeps the most recent request service times (wall seconds)
// for the Retry-After estimate. It is deliberately tiny: a p99 over the
// last 256 requests tracks load shifts quickly and costs one lock and one
// slot store per request.
type latencyRing struct {
	mu  sync.Mutex
	buf [256]float64
	n   int // filled slots, ≤ len(buf)
	idx int // next write position
}

func (r *latencyRing) observe(seconds float64) {
	r.mu.Lock()
	r.buf[r.idx] = seconds
	r.idx = (r.idx + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// p99 returns the 99th-percentile observed service time, or def when no
// requests have completed yet.
func (r *latencyRing) p99(def float64) float64 {
	r.mu.Lock()
	if r.n == 0 {
		r.mu.Unlock()
		return def
	}
	s := make([]float64, r.n)
	copy(s, r.buf[:r.n])
	r.mu.Unlock()
	sort.Float64s(s)
	i := (len(s) * 99) / 100
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// retryAfterSeconds estimates how long a shed client should wait before
// retrying: the observed p99 service time scaled by how many requests are
// ahead of it per execution slot, clamped to [1s, 60s] so the header is
// always sane even while the ring is cold or the math degenerate.
func retryAfterSeconds(ring *latencyRing, adm *admission) int {
	inflight, queued := adm.occupancy()
	slots := adm.cap
	if slots < 1 {
		slots = 1
	}
	est := ring.p99(1.0) * float64(inflight+queued+1) / float64(slots)
	switch {
	case est < 1:
		return 1
	case est > 60:
		return 60
	default:
		return int(est + 0.5)
	}
}
