package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// randSPD builds a well-conditioned n×n SPD matrix M = B·Bᵀ + n·I.
func randSPD(rng *rand.Rand, n int) []float64 {
	b := randSlice(rng, n*n)
	m := make([]float64, n*n)
	RefGemm(NoTrans, Transpose, n, n, n, 1, b, n, b, n, 0, m, n)
	for i := 0; i < n; i++ {
		m[i+i*n] += float64(n)
	}
	return m
}

func maxAbsDiffSlice(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

func TestGemmAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ta := range []Trans{NoTrans, Transpose} {
		for _, tb := range []Trans{NoTrans, Transpose} {
			for trial := 0; trial < 20; trial++ {
				m, n, k := rng.Intn(12)+1, rng.Intn(12)+1, rng.Intn(12)+1
				lda, ldb, ldc := m, k, m
				if ta == Transpose {
					lda = k
				}
				if tb == Transpose {
					ldb = n
				}
				// Random extra leading-dimension padding.
				lda += rng.Intn(3)
				ldb += rng.Intn(3)
				ldc += rng.Intn(3)
				asz, bsz := lda*k, ldb*n
				if ta == Transpose {
					asz = lda * m
				}
				if tb == Transpose {
					bsz = ldb * k
				}
				a := randSlice(rng, asz)
				b := randSlice(rng, bsz)
				c0 := randSlice(rng, ldc*n)
				alpha := rng.NormFloat64()
				beta := rng.NormFloat64()

				got := append([]float64(nil), c0...)
				want := append([]float64(nil), c0...)
				Gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, got, ldc)
				RefGemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, want, ldc)
				if d := maxAbsDiffSlice(got, want); d > 1e-10 {
					t.Fatalf("Gemm(%v,%v,m=%d,n=%d,k=%d) differs from reference by %g", ta, tb, m, n, k, d)
				}
			}
		}
	}
}

func TestGemmZeroSizes(t *testing.T) {
	// m, n or k of zero must be a no-op (beta scaling aside) and not panic.
	c := []float64{1, 2, 3, 4}
	Gemm(NoTrans, NoTrans, 0, 0, 0, 1, nil, 1, nil, 1, 1, c, 1)
	Gemm(NoTrans, NoTrans, 2, 2, 0, 1, nil, 2, nil, 1, 2, c, 2)
	want := []float64{2, 4, 6, 8}
	if maxAbsDiffSlice(c, want) != 0 {
		t.Fatalf("k=0 Gemm should only scale C by beta: got %v want %v", c, want)
	}
}

func TestGemmDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ldc < m")
		}
	}()
	Gemm(NoTrans, NoTrans, 4, 1, 1, 1, make([]float64, 4), 4, make([]float64, 1), 1, 0, make([]float64, 4), 2)
}

func TestSyrkAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, trans := range []Trans{NoTrans, Transpose} {
			for trial := 0; trial < 20; trial++ {
				n, k := rng.Intn(12)+1, rng.Intn(12)+1
				lda := n
				if trans == Transpose {
					lda = k
				}
				lda += rng.Intn(3)
				asz := lda * k
				if trans == Transpose {
					asz = lda * n
				}
				a := randSlice(rng, asz)
				ldc := n + rng.Intn(3)
				c0 := randSlice(rng, ldc*n)
				alpha, beta := rng.NormFloat64(), rng.NormFloat64()

				got := append([]float64(nil), c0...)
				want := append([]float64(nil), c0...)
				Syrk(uplo, trans, n, k, alpha, a, lda, beta, got, ldc)
				RefSyrk(uplo, trans, n, k, alpha, a, lda, beta, want, ldc)
				if d := maxAbsDiffSlice(got, want); d > 1e-10 {
					t.Fatalf("Syrk(%v,%v,n=%d,k=%d) differs from reference by %g", uplo, trans, n, k, d)
				}
			}
		}
	}
}

func TestSyrkLeavesOppositeTriangleUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, k := 6, 4
	a := randSlice(rng, n*k)
	c := randSlice(rng, n*n)
	orig := append([]float64(nil), c...)
	Syrk(Lower, NoTrans, n, k, 1, a, n, 0.5, c, n)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ { // strictly upper
			if c[i+j*n] != orig[i+j*n] {
				t.Fatalf("Syrk(Lower) modified upper-triangle element (%d,%d)", i, j)
			}
		}
	}
}

func TestTrsmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []Trans{NoTrans, Transpose} {
				for trial := 0; trial < 10; trial++ {
					m, n := rng.Intn(10)+1, rng.Intn(10)+1
					na := m
					if side == Right {
						na = n
					}
					// Build a well-conditioned triangular A.
					lda := na + rng.Intn(3)
					a := randSlice(rng, lda*na)
					for i := 0; i < na; i++ {
						a[i+i*lda] = 2 + math.Abs(a[i+i*lda])
					}
					ldb := m + rng.Intn(3)
					b0 := randSlice(rng, ldb*n)
					alpha := 1 + rng.Float64()

					x := append([]float64(nil), b0...)
					Trsm(side, uplo, trans, m, n, alpha, a, lda, x, ldb)
					// Verify op(A)*X (or X*op(A)) == alpha*B.
					back := RefTrsmMul(side, uplo, trans, m, n, a, lda, x, ldb)
					for j := 0; j < n; j++ {
						for i := 0; i < m; i++ {
							want := alpha * b0[i+j*ldb]
							if d := math.Abs(back[i+j*m] - want); d > 1e-9 {
								t.Fatalf("Trsm(%v,%v,%v,m=%d,n=%d): residual %g at (%d,%d)", side, uplo, trans, m, n, d, i, j)
							}
						}
					}
				}
			}
		}
	}
}

func TestPotrfLowerReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 5, 8, 13, 21, 40} {
		m := randSPD(rng, n)
		l := append([]float64(nil), m...)
		if err := Potrf(Lower, n, l, n); err != nil {
			t.Fatalf("n=%d: unexpected error %v", n, err)
		}
		// Zero the strictly upper part of the factor copy, then L·Lᵀ.
		lf := append([]float64(nil), l...)
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				lf[i+j*n] = 0
			}
		}
		rec := make([]float64, n*n)
		RefGemm(NoTrans, Transpose, n, n, n, 1, lf, n, lf, n, 0, rec, n)
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				if d := math.Abs(rec[i+j*n] - m[i+j*n]); d > 1e-8*float64(n) {
					t.Fatalf("n=%d: reconstruction error %g at (%d,%d)", n, d, i, j)
				}
			}
		}
		// Strictly upper triangle must be untouched.
		for j := 0; j < n; j++ {
			for i := 0; i < j; i++ {
				if l[i+j*n] != m[i+j*n] {
					t.Fatalf("n=%d: Potrf(Lower) modified upper triangle at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestPotrfUpperReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 12
	m := randSPD(rng, n)
	u := append([]float64(nil), m...)
	if err := Potrf(Upper, n, u, n); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
	uf := append([]float64(nil), u...)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			uf[i+j*n] = 0
		}
	}
	rec := make([]float64, n*n)
	RefGemm(Transpose, NoTrans, n, n, n, 1, uf, n, uf, n, 0, rec, n)
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			if d := math.Abs(rec[i+j*n] - m[i+j*n]); d > 1e-8*float64(n) {
				t.Fatalf("reconstruction error %g at (%d,%d)", d, i, j)
			}
		}
	}
}

func TestPotrfNotPositiveDefinite(t *testing.T) {
	// A matrix with a negative eigenvalue must be rejected.
	a := []float64{
		1, 2,
		2, 1,
	}
	err := Potrf(Lower, 2, a, 2)
	if err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
	if !errorsIs(err, ErrNotPositiveDefinite) {
		t.Fatalf("got %v, want wrapped ErrNotPositiveDefinite", err)
	}
	// Zero matrix fails on the first pivot.
	z := make([]float64, 9)
	if err := Potrf(Lower, 3, z, 3); err == nil {
		t.Fatal("expected failure on zero matrix")
	}
}

// errorsIs avoids importing errors in the test just for one call site.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestPotrfMatchesTrsmSyrkBlocked(t *testing.T) {
	// Factor a matrix with POTRF, then verify the blocked identity the
	// solver relies on: for A = [[A11, ·],[A21, A22]],
	// L11 = chol(A11); L21 = A21·L11⁻ᵀ (Right/Lower/Transpose TRSM);
	// A22' = A22 − L21·L21ᵀ (SYRK); L22 = chol(A22').
	rng := rand.New(rand.NewSource(7))
	n := 20
	nb := 8
	m := randSPD(rng, n)

	whole := append([]float64(nil), m...)
	if err := Potrf(Lower, n, whole, n); err != nil {
		t.Fatal(err)
	}

	blocked := append([]float64(nil), m...)
	// chol(A11) in place.
	if err := Potrf(Lower, nb, blocked, n); err != nil {
		t.Fatal(err)
	}
	// L21 = A21 · L11⁻ᵀ.
	Trsm(Right, Lower, Transpose, n-nb, nb, 1, blocked, n, blocked[nb:], n)
	// A22 −= L21·L21ᵀ.
	Syrk(Lower, NoTrans, n-nb, nb, -1, blocked[nb:], n, 1, blocked[nb+nb*n:], n)
	if err := Potrf(Lower, n-nb, blocked[nb+nb*n:], n); err != nil {
		t.Fatal(err)
	}

	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if d := math.Abs(whole[i+j*n] - blocked[i+j*n]); d > 1e-9 {
				t.Fatalf("blocked factorization differs at (%d,%d) by %g", i, j, d)
			}
		}
	}
}

func TestDenseCholSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 15
	spd := randSPD(rng, n)
	d := NewDense(n, n)
	copy(d.Data, spd)
	orig := NewDense(n, n)
	copy(orig.Data, spd)
	xTrue := randSlice(rng, n)
	b := orig.MulVec(xTrue)
	x, err := d.CholSolve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := ResidualNorm(orig, x, b); r > 1e-10 {
		t.Fatalf("residual %g too large", r)
	}
}

// Property-based: Potrf of B·Bᵀ+cI succeeds and reconstructs for arbitrary B.
func TestPotrfProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		m := randSPD(rng, n)
		l := append([]float64(nil), m...)
		if err := Potrf(Lower, n, l, n); err != nil {
			return false
		}
		// spot-check a few entries of L·Lᵀ.
		for trial := 0; trial < 5; trial++ {
			i := rng.Intn(n)
			j := rng.Intn(i + 1)
			var s float64
			for r := 0; r <= j; r++ {
				s += l[i+r*n] * l[j+r*n]
			}
			if math.Abs(s-m[i+j*n]) > 1e-7*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property-based: Gemm is linear in alpha.
func TestGemmLinearityProperty(t *testing.T) {
	f := func(seed int64, mRaw, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := int(mRaw%8)+1, int(nRaw%8)+1, int(kRaw%8)+1
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		Gemm(NoTrans, NoTrans, m, n, k, 2.5, a, m, b, k, 0, c1, m)
		Gemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c2, m)
		for i := range c1 {
			if math.Abs(c1[i]-2.5*c2[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFlopCounts(t *testing.T) {
	if FlopsGemm(2, 3, 4) != 48 {
		t.Fatalf("FlopsGemm = %d", FlopsGemm(2, 3, 4))
	}
	if FlopsSyrk(3, 2) != 24 {
		t.Fatalf("FlopsSyrk = %d", FlopsSyrk(3, 2))
	}
	if FlopsTrsm(Left, 3, 5) != 45 || FlopsTrsm(Right, 5, 3) != 45 {
		t.Fatal("FlopsTrsm wrong")
	}
	if FlopsPotrf(6) != 72 {
		t.Fatalf("FlopsPotrf = %d", FlopsPotrf(6))
	}
}

// The blocked GEMM implementation must match the reference across fringe
// shapes and leading-dimension padding. (It is not dispatched to by Gemm —
// see gemm_blocked.go for the measured reasoning — but stays correct.)
func TestGemmBlockedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	shapes := [][3]int{
		{48, 48, 48},    // exactly at the cutoff volume
		{64, 64, 64},    // whole tiles
		{65, 67, 70},    // fringe rows and columns everywhere
		{130, 50, 300},  // crosses MC and KC panel boundaries
		{50, 513, 40},   // hmm: below cutoff — stays on simple path; fine
		{200, 130, 257}, // crosses NC? nc=512 not crossed; kc crossed
	}
	for _, tb := range []Trans{NoTrans, Transpose} {
		for _, sh := range shapes {
			m, n, k := sh[0], sh[1], sh[2]
			lda, ldc := m+3, m+1
			ldb := k + 2
			if tb == Transpose {
				ldb = n + 2
			}
			asz := lda * k
			bsz := ldb * n
			if tb == Transpose {
				bsz = ldb * k
			}
			a := randSlice(rng, asz)
			b := randSlice(rng, bsz)
			c0 := randSlice(rng, ldc*n)
			alpha := 1.25
			got := append([]float64(nil), c0...)
			want := append([]float64(nil), c0...)
			if tb == Transpose {
				gemmBlockedNT(m, n, k, alpha, a, lda, b, ldb, got, ldc)
			} else {
				gemmBlockedNN(m, n, k, alpha, a, lda, b, ldb, got, ldc)
			}
			RefGemm(NoTrans, tb, m, n, k, alpha, a, lda, b, ldb, 1, want, ldc)
			if d := maxAbsDiffSlice(got, want); d > 1e-9 {
				t.Fatalf("blocked Gemm(%v, %dx%dx%d) differs by %g", tb, m, n, k, d)
			}
		}
	}
}

// Property: blocked and simple paths agree at randomly chosen large-ish
// shapes.
func TestGemmBlockedProperty(t *testing.T) {
	f := func(seed int64, mRaw, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw%64) + 48
		n := int(nRaw%64) + 48
		k := int(kRaw%64) + 48
		a := randSlice(rng, m*k)
		b := randSlice(rng, n*k)
		got := make([]float64, m*n)
		want := make([]float64, m*n)
		gemmBlockedNT(m, n, k, 1, a, m, b, n, got, m)
		RefGemm(NoTrans, Transpose, m, n, k, 1, a, m, b, n, 1, want, m)
		return maxAbsDiffSlice(got, want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Blocked POTRF path (n ≥ 64) must agree with the unblocked kernel and
// report failures with the global pivot context.
func TestPotrfBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, n := range []int{64, 65, 96, 129, 200} {
		m := randSPD(rng, n)
		blocked := append([]float64(nil), m...)
		if err := Potrf(Lower, n, blocked, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		unblocked := append([]float64(nil), m...)
		if err := potrfUnblocked(Lower, n, unblocked, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				if d := math.Abs(blocked[i+j*n] - unblocked[i+j*n]); d > 1e-8 {
					t.Fatalf("n=%d: blocked differs at (%d,%d) by %g", n, i, j, d)
				}
			}
		}
	}
	// Failure in a trailing block must surface as not-positive-definite.
	n := 80
	m := randSPD(rng, n)
	m[70+70*n] = -1e6 // poison a late pivot region
	bad := append([]float64(nil), m...)
	if err := Potrf(Lower, n, bad, n); err == nil {
		t.Fatal("expected failure")
	} else if !errorsIs(err, ErrNotPositiveDefinite) {
		t.Fatalf("got %v", err)
	}
}
