package blas

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkGemmBlockedVsSimple documents the negative result recorded in
// gemm_blocked.go: the packed micro-kernel path trails the axpy loops.
func BenchmarkGemmBlockedVsSimple(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{48, 64, 96, 128, 192, 256, 384} {
		a := randSlice(rng, n*n)
		bb := randSlice(rng, n*n)
		c := make([]float64, n*n)
		b.Run(fmt.Sprintf("simple-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmNT(n, n, n, 1, a, n, bb, n, c, n)
			}
			b.ReportMetric(float64(2*n*n*n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
		})
		b.Run(fmt.Sprintf("blocked-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gemmBlockedNT(n, n, n, 1, a, n, bb, n, c, n)
			}
			b.ReportMetric(float64(2*n*n*n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
		})
	}
}
