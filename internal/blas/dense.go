package blas

import "math"

// Dense is a small column-major dense matrix helper used by tests, the
// sequential reference solver, and the examples. It is deliberately simple:
// the production kernels operate on raw slices.
type Dense struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewDense allocates a zeroed r×c column-major matrix.
func NewDense(r, c int) *Dense {
	return &Dense{Rows: r, Cols: c, Stride: r, Data: make([]float64, r*c)}
}

// At returns element (i,j).
func (d *Dense) At(i, j int) float64 { return d.Data[i+j*d.Stride] }

// Set assigns element (i,j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i+j*d.Stride] = v }

// Add accumulates v into element (i,j).
func (d *Dense) Add(i, j int, v float64) { d.Data[i+j*d.Stride] += v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.Rows, d.Cols)
	for j := 0; j < d.Cols; j++ {
		copy(out.Data[j*out.Stride:j*out.Stride+d.Rows], d.Data[j*d.Stride:j*d.Stride+d.Rows])
	}
	return out
}

// Symmetrize copies the lower triangle onto the upper triangle.
func (d *Dense) Symmetrize() {
	for j := 0; j < d.Cols; j++ {
		for i := j + 1; i < d.Rows; i++ {
			d.Set(j, i, d.At(i, j))
		}
	}
}

// MulVec computes y = d*x.
func (d *Dense) MulVec(x []float64) []float64 {
	y := make([]float64, d.Rows)
	for j := 0; j < d.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		col := d.Data[j*d.Stride : j*d.Stride+d.Rows]
		for i, v := range col {
			y[i] += v * xj
		}
	}
	return y
}

// CholSolve factors the SPD matrix d (lower triangle) and solves d*x = b,
// returning x. d is overwritten with its Cholesky factor. Used as the ground
// truth in tests and by the sequential reference solver for small systems.
func (d *Dense) CholSolve(b []float64) ([]float64, error) {
	if err := Potrf(Lower, d.Rows, d.Data, d.Stride); err != nil {
		return nil, err
	}
	x := make([]float64, len(b))
	copy(x, b)
	// Forward solve L y = b.
	Trsm(Left, Lower, NoTrans, d.Rows, 1, 1, d.Data, d.Stride, x, d.Rows)
	// Backward solve Lᵀ x = y.
	Trsm(Left, Lower, Transpose, d.Rows, 1, 1, d.Data, d.Stride, x, d.Rows)
	return x, nil
}

// MaxAbsDiff returns max |a-b| over the shared extent of two matrices.
func MaxAbsDiff(a, b *Dense) float64 {
	var m float64
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			d := math.Abs(a.At(i, j) - b.At(i, j))
			if d > m {
				m = d
			}
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of a vector.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// ResidualNorm returns ‖b − A·x‖₂ / ‖b‖₂ for a dense A, a convenience for
// tests and examples. A zero b yields the absolute residual norm.
func ResidualNorm(a *Dense, x, b []float64) float64 {
	ax := a.MulVec(x)
	r := make([]float64, len(b))
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	nb := Norm2(b)
	if nb == 0 {
		return Norm2(r)
	}
	return Norm2(r) / nb
}
