package blas

// Reference kernels: textbook triple-loop implementations used exclusively
// by the test suite to validate the production kernels. They share the
// column-major, leading-dimension convention of the production code.

// RefGemm is the naive O(mnk) general matrix multiply.
func RefGemm(ta, tb Trans, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if ta == NoTrans {
			return a[i+l*lda]
		}
		return a[l+i*lda]
	}
	bt := func(l, j int) float64 {
		if tb == NoTrans {
			return b[l+j*ldb]
		}
		return b[j+l*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

// RefSyrk is the naive symmetric rank-k update.
func RefSyrk(uplo Uplo, trans Trans, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if trans == NoTrans {
			return a[i+l*lda]
		}
		return a[l+i*lda]
	}
	for j := 0; j < n; j++ {
		var lo, hi int
		if uplo == Lower {
			lo, hi = j, n
		} else {
			lo, hi = 0, j+1
		}
		for i := lo; i < hi; i++ {
			var s float64
			for l := 0; l < k; l++ {
				s += at(i, l) * at(j, l)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

// RefTrsmSolve checks a Trsm result by multiplying back: it returns
// op(A)*X (Left) or X*op(A) (Right) into a fresh m×n buffer with leading
// dimension m.
func RefTrsmMul(side Side, uplo Uplo, trans Trans, m, n int, a []float64, lda int, x []float64, ldx int) []float64 {
	na := m
	if side == Right {
		na = n
	}
	// Materialize op(A) as a dense na×na matrix with only the stored
	// triangle populated.
	t := make([]float64, na*na)
	for j := 0; j < na; j++ {
		for i := 0; i < na; i++ {
			inTri := (uplo == Lower && i >= j) || (uplo == Upper && i <= j)
			if !inTri {
				continue
			}
			v := a[i+j*lda]
			if trans == NoTrans {
				t[i+j*na] = v
			} else {
				t[j+i*na] = v
			}
		}
	}
	out := make([]float64, m*n)
	if side == Left {
		RefGemm(NoTrans, NoTrans, m, n, m, 1, t, na, x, ldx, 0, out, m)
	} else {
		RefGemm(NoTrans, NoTrans, m, n, n, 1, x, ldx, t, na, 0, out, m)
	}
	return out
}
