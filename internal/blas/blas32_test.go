package blas

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func rand32(rng *rand.Rand, n int) ([]float32, []float64) {
	s32 := make([]float32, n)
	s64 := make([]float64, n)
	for i := range s32 {
		v := float32(rng.NormFloat64())
		s32[i] = v
		s64[i] = float64(v)
	}
	return s32, s64
}

func maxAbsDiff3264(a []float32, b []float64) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - b[i])
		if d > m {
			m = d
		}
	}
	return m
}

// fp32Tol bounds the fp32-vs-fp64 drift of an O(k)-term accumulation of
// O(1) operands: a generous multiple of k·eps32.
func fp32Tol(k int) float64 {
	return 64 * float64(k+1) * 1.19e-7
}

func TestGemm32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, ta := range []Trans{NoTrans, Transpose} {
		for _, tb := range []Trans{NoTrans, Transpose} {
			for trial := 0; trial < 10; trial++ {
				m, n, k := rng.Intn(10)+1, rng.Intn(10)+1, rng.Intn(10)+1
				lda, ldb := m, k
				if ta == Transpose {
					lda = k
				}
				if tb == Transpose {
					ldb = n
				}
				asz, bsz := lda*k, ldb*n
				if ta == Transpose {
					asz = lda * m
				}
				if tb == Transpose {
					bsz = ldb * k
				}
				a32, a64 := rand32(rng, asz)
				b32, b64 := rand32(rng, bsz)
				c32, c64 := rand32(rng, m*n)
				Gemm32(ta, tb, m, n, k, 1, a32, lda, b32, ldb, 1, c32, m)
				Gemm(ta, tb, m, n, k, 1, a64, lda, b64, ldb, 1, c64, m)
				if d := maxAbsDiff3264(c32, c64); d > fp32Tol(k)*float64(k) {
					t.Fatalf("Gemm32(%v,%v) m=%d n=%d k=%d diverged from fp64 by %g", ta, tb, m, n, k, d)
				}
			}
		}
	}
}

func TestSyrk32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, uplo := range []Uplo{Lower, Upper} {
		for _, trans := range []Trans{NoTrans, Transpose} {
			for trial := 0; trial < 10; trial++ {
				n, k := rng.Intn(10)+1, rng.Intn(10)+1
				lda := n
				if trans == Transpose {
					lda = k
				}
				asz := lda * k
				if trans == Transpose {
					asz = lda * n
				}
				a32, a64 := rand32(rng, asz)
				c32, c64 := rand32(rng, n*n)
				Syrk32(uplo, trans, n, k, -1, a32, lda, 1, c32, n)
				Syrk(uplo, trans, n, k, -1, a64, lda, 1, c64, n)
				// Syrk only touches one triangle; compare the full buffer
				// anyway since untouched entries started identical.
				if d := maxAbsDiff3264(c32, c64); d > fp32Tol(k)*float64(k) {
					t.Fatalf("Syrk32(%v,%v) n=%d k=%d diverged from fp64 by %g", uplo, trans, n, k, d)
				}
			}
		}
	}
}

func TestTrsm32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, trans := range []Trans{NoTrans, Transpose} {
				for trial := 0; trial < 6; trial++ {
					m, n := rng.Intn(8)+1, rng.Intn(8)+1
					na := m
					if side == Right {
						na = n
					}
					a32, a64 := rand32(rng, na*na)
					// Keep the triangular system well conditioned: dominant
					// diagonal, identical in both precisions.
					for i := 0; i < na; i++ {
						a32[i+i*na] = float32(4 + rng.Float64())
						a64[i+i*na] = float64(a32[i+i*na])
					}
					b32, b64 := rand32(rng, m*n)
					Trsm32(side, uplo, trans, m, n, 1, a32, na, b32, m)
					Trsm(side, uplo, trans, m, n, 1, a64, na, b64, m)
					if d := maxAbsDiff3264(b32, b64); d > fp32Tol(na)*float64(na) {
						t.Fatalf("Trsm32(%v,%v,%v) m=%d n=%d diverged from fp64 by %g", side, uplo, trans, m, n, d)
					}
				}
			}
		}
	}
}

func TestPotrf32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, uplo := range []Uplo{Lower, Upper} {
		for trial := 0; trial < 10; trial++ {
			n := rng.Intn(20) + 1
			m64 := randSPD(rng, n)
			Round32(m64)
			m32 := make([]float32, n*n)
			To32(m32, m64)
			if err := Potrf32(uplo, n, m32, n); err != nil {
				t.Fatalf("Potrf32(%v) n=%d failed on SPD input: %v", uplo, n, err)
			}
			if err := Potrf(uplo, n, m64, n); err != nil {
				t.Fatalf("Potrf(%v) n=%d failed on SPD input: %v", uplo, n, err)
			}
			if d := maxAbsDiff3264(m32, m64); d > fp32Tol(n)*float64(n)*4 {
				t.Fatalf("Potrf32(%v) n=%d diverged from fp64 by %g", uplo, n, d)
			}
		}
	}
}

func TestPotrf32NotPositiveDefinite(t *testing.T) {
	a := []float32{1, 2, 2, 1} // eigenvalues 3, -1
	err := Potrf32(Lower, 2, a, 2)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("Potrf32 on indefinite matrix: got %v, want ErrNotPositiveDefinite", err)
	}
}

// TestPotrf32TightRange exercises the fp32 failure mode the fallback path
// depends on: a matrix whose conditioning is survivable in fp64 but whose
// pivots underflow fp32's relative precision.
func TestPotrf32TightRange(t *testing.T) {
	n := 8
	a64 := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a64[i+i*n] = 1
		for j := 0; j < i; j++ {
			v := 1 - 1e-9 // nearly dependent columns: fp32 can't represent the gap
			a64[i+j*n] = v
			a64[j+i*n] = v
		}
	}
	a32 := make([]float32, n*n)
	To32(a32, a64)
	if err := Potrf32(Lower, n, a32, n); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("Potrf32 on fp32-degenerate matrix: got %v, want ErrNotPositiveDefinite", err)
	}
	if err := Potrf(Lower, n, a64, n); err != nil {
		t.Fatalf("Potrf (fp64) should survive the same matrix, got %v", err)
	}
}

func TestRound32Conversions(t *testing.T) {
	src := []float64{1.0 / 3.0, math.Pi, -2.5e-20, 1e20}
	dst32 := make([]float32, len(src))
	To32(dst32, src)
	back := make([]float64, len(src))
	From32(back, dst32)
	rounded := append([]float64(nil), src...)
	Round32(rounded)
	for i := range src {
		if back[i] != rounded[i] {
			t.Fatalf("Round32[%d]=%g disagrees with To32∘From32=%g", i, rounded[i], back[i])
		}
		if back[i] != float64(float32(src[i])) {
			t.Fatalf("conversion chain[%d]=%g not round-to-nearest of %g", i, back[i], src[i])
		}
	}
}
