package blas

// Single-precision ports of the four factorization kernels, backing the
// mixed-precision mode (Options.Precision = fp32): the factorization's
// arithmetic genuinely runs in float32 — every product, sum and square root
// is rounded to 24-bit significands — while the engine keeps its []float64
// staging buffers, converting at the kernel boundary (To32/From32). The
// resulting factor carries fp32-accurate values in fp64 storage, which is
// what SolveRefined's fp64 refinement loop then polishes back to double
// precision (the cholespy fp32-solve pattern; DESIGN.md §14).
//
// The implementations mirror the float64 kernels' loop shapes exactly, so
// the operation order — and therefore the rounded bits — is a pure function
// of the arguments: bit-identical across worker counts, rank counts and
// scheduling policies, the same determinism contract the fp64 kernels hold.

import (
	"fmt"
	"math"
)

// To32 demotes src into dst element-wise (round-to-nearest-even).
func To32(dst []float32, src []float64) {
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] = float32(v)
	}
}

// From32 promotes src into dst element-wise (exact).
func From32(dst []float64, src []float32) {
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// Round32 rounds every element of a through float32 in place, the storage
// demotion applied to fp32-mode factor blocks that bypassed a kernel.
func Round32(a []float64) {
	for i, v := range a {
		a[i] = float64(float32(v))
	}
}

// Gemm32 is Gemm in float32: C = alpha*op(A)*op(B) + beta*C.
func Gemm32(ta, tb Trans, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) {
	checkDims(m >= 0 && n >= 0 && k >= 0, "Gemm32: negative dimension m=%d n=%d k=%d", m, n, k)
	checkDims(ldc >= max(1, m), "Gemm32: ldc=%d < m=%d", ldc, m)
	if ta == NoTrans {
		checkDims(lda >= max(1, m), "Gemm32: lda=%d < m=%d", lda, m)
	} else {
		checkDims(lda >= max(1, k), "Gemm32: lda=%d < k=%d", lda, k)
	}
	if tb == NoTrans {
		checkDims(ldb >= max(1, k), "Gemm32: ldb=%d < k=%d", ldb, k)
	} else {
		checkDims(ldb >= max(1, n), "Gemm32: ldb=%d < n=%d", ldb, n)
	}
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		scaleRect32(m, n, beta, c, ldc)
	}
	if k == 0 || alpha == 0 {
		return
	}
	at := func(i, l int) float32 {
		if ta == NoTrans {
			return a[i+l*lda]
		}
		return a[l+i*lda]
	}
	bt := func(l, j int) float32 {
		if tb == NoTrans {
			return b[l+j*ldb]
		}
		return b[j+l*ldb]
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			t := alpha * bt(l, j)
			if t == 0 {
				continue
			}
			for i := 0; i < m; i++ {
				cj[i] += t * at(i, l)
			}
		}
	}
}

func scaleRect32(m, n int, beta float32, c []float32, ldc int) {
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		for i := range col {
			if beta == 0 {
				col[i] = 0
			} else {
				col[i] *= beta
			}
		}
	}
}

// Syrk32 is Syrk in float32: C = alpha*op(A)*op(A)ᵀ + beta*C on one
// triangle.
func Syrk32(uplo Uplo, trans Trans, n, k int, alpha float32, a []float32, lda int, beta float32, c []float32, ldc int) {
	checkDims(n >= 0 && k >= 0, "Syrk32: negative dimension n=%d k=%d", n, k)
	checkDims(ldc >= max(1, n), "Syrk32: ldc=%d < n=%d", ldc, n)
	if n == 0 {
		return
	}
	if beta != 1 {
		for j := 0; j < n; j++ {
			var lo, hi int
			if uplo == Lower {
				lo, hi = j, n
			} else {
				lo, hi = 0, j+1
			}
			col := c[j*ldc:]
			for i := lo; i < hi; i++ {
				if beta == 0 {
					col[i] = 0
				} else {
					col[i] *= beta
				}
			}
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	at := func(i, l int) float32 {
		if trans == NoTrans {
			return a[i+l*lda]
		}
		return a[l+i*lda]
	}
	for l := 0; l < k; l++ {
		for j := 0; j < n; j++ {
			t := alpha * at(j, l)
			if t == 0 {
				continue
			}
			col := c[j*ldc:]
			if uplo == Lower {
				for i := j; i < n; i++ {
					col[i] += t * at(i, l)
				}
			} else {
				for i := 0; i <= j; i++ {
					col[i] += t * at(i, l)
				}
			}
		}
	}
}

// Trsm32 is Trsm in float32, all eight side/uplo/trans variants: solves
// op(A)*X = alpha*B (Left) or X*op(A) = alpha*B (Right) in place.
func Trsm32(side Side, uplo Uplo, trans Trans, m, n int, alpha float32, a []float32, lda int, b []float32, ldb int) {
	checkDims(m >= 0 && n >= 0, "Trsm32: negative dimension m=%d n=%d", m, n)
	checkDims(ldb >= max(1, m), "Trsm32: ldb=%d < m=%d", ldb, m)
	na := m
	if side == Right {
		na = n
	}
	checkDims(lda >= max(1, na), "Trsm32: lda=%d < order=%d", lda, na)
	if m == 0 || n == 0 {
		return
	}
	if alpha != 1 {
		scaleRect32(m, n, alpha, b, ldb)
	}
	switch {
	case side == Left && uplo == Lower && trans == NoTrans:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := 0; i < m; i++ {
				bj[i] /= a[i+i*lda]
				t := bj[i]
				if t == 0 {
					continue
				}
				ai := a[i*lda:]
				for r := i + 1; r < m; r++ {
					bj[r] -= t * ai[r]
				}
			}
		}
	case side == Left && uplo == Lower && trans == Transpose:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := m - 1; i >= 0; i-- {
				ai := a[i*lda:]
				s := bj[i]
				for r := i + 1; r < m; r++ {
					s -= ai[r] * bj[r]
				}
				bj[i] = s / ai[i]
			}
		}
	case side == Left && uplo == Upper && trans == NoTrans:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := m - 1; i >= 0; i-- {
				bj[i] /= a[i+i*lda]
				t := bj[i]
				if t == 0 {
					continue
				}
				ai := a[i*lda:]
				for r := 0; r < i; r++ {
					bj[r] -= t * ai[r]
				}
			}
		}
	case side == Left && uplo == Upper && trans == Transpose:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := 0; i < m; i++ {
				ai := a[i*lda:]
				s := bj[i]
				for r := 0; r < i; r++ {
					s -= ai[r] * bj[r]
				}
				bj[i] = s / ai[i]
			}
		}
	case side == Right && uplo == Lower && trans == NoTrans:
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			aj := a[j*lda:]
			for r := j + 1; r < n; r++ {
				t := aj[r]
				if t == 0 {
					continue
				}
				br := b[r*ldb : r*ldb+m]
				for i := 0; i < m; i++ {
					bj[i] -= t * br[i]
				}
			}
			d := aj[j]
			for i := 0; i < m; i++ {
				bj[i] /= d
			}
		}
	case side == Right && uplo == Lower && trans == Transpose:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for r := 0; r < j; r++ {
				t := a[j+r*lda]
				if t == 0 {
					continue
				}
				br := b[r*ldb : r*ldb+m]
				for i := 0; i < m; i++ {
					bj[i] -= t * br[i]
				}
			}
			d := a[j+j*lda]
			for i := 0; i < m; i++ {
				bj[i] /= d
			}
		}
	case side == Right && uplo == Upper && trans == NoTrans:
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			aj := a[j*lda:]
			for r := 0; r < j; r++ {
				t := aj[r]
				if t == 0 {
					continue
				}
				br := b[r*ldb : r*ldb+m]
				for i := 0; i < m; i++ {
					bj[i] -= t * br[i]
				}
			}
			d := aj[j]
			for i := 0; i < m; i++ {
				bj[i] /= d
			}
		}
	default: // Right, Upper, Transpose
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			for r := j + 1; r < n; r++ {
				t := a[j+r*lda]
				if t == 0 {
					continue
				}
				br := b[r*ldb : r*ldb+m]
				for i := 0; i < m; i++ {
					bj[i] -= t * br[i]
				}
			}
			d := a[j+j*lda]
			for i := 0; i < m; i++ {
				bj[i] /= d
			}
		}
	}
}

// Potrf32 computes the float32 Cholesky factorization in place (unblocked;
// supernode diagonal blocks are width-capped well below the blocking
// threshold of the fp64 kernel). Returns ErrNotPositiveDefinite with the
// failing pivot when a pivot is ≤ 0 or NaN — in fp32 that happens for
// matrices whose conditioning is fine in fp64, which is exactly the signal
// the engine's fp32→fp64 fallback path consumes.
func Potrf32(uplo Uplo, n int, a []float32, lda int) error {
	checkDims(n >= 0, "Potrf32: negative dimension n=%d", n)
	checkDims(lda >= max(1, n), "Potrf32: lda=%d < n=%d", lda, n)
	if uplo == Lower {
		for j := 0; j < n; j++ {
			aj := a[j*lda:]
			d := aj[j]
			for r := 0; r < j; r++ {
				ljr := a[j+r*lda]
				d -= ljr * ljr
			}
			if d <= 0 || d != d {
				return fmt.Errorf("%w (fp32 pivot %d, value %g)", ErrNotPositiveDefinite, j, d)
			}
			d = float32(math.Sqrt(float64(d)))
			aj[j] = d
			for r := 0; r < j; r++ {
				t := a[j+r*lda]
				if t == 0 {
					continue
				}
				ar := a[r*lda:]
				for i := j + 1; i < n; i++ {
					aj[i] -= t * ar[i]
				}
			}
			inv := 1 / d
			for i := j + 1; i < n; i++ {
				aj[i] *= inv
			}
		}
		return nil
	}
	for j := 0; j < n; j++ {
		aj := a[j*lda:]
		d := aj[j]
		for r := 0; r < j; r++ {
			urj := aj[r]
			d -= urj * urj
		}
		if d <= 0 || d != d {
			return fmt.Errorf("%w (fp32 pivot %d, value %g)", ErrNotPositiveDefinite, j, d)
		}
		d = float32(math.Sqrt(float64(d)))
		aj[j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			ai := a[i*lda:]
			s := ai[j]
			for r := 0; r < j; r++ {
				s -= aj[r] * ai[r]
			}
			ai[j] = s * inv
		}
	}
	return nil
}
