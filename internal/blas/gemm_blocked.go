package blas

// Cache-blocked GEMM: the classic GotoBLAS decomposition — pack panels of
// both operands into contiguous buffers and run a 4×4 register micro-kernel
// over them.
//
// Measured finding (see BenchmarkGemmBlockedVsSimple): in pure Go this
// decomposition LOSES to the simple axpy-form loops in blas.go at every
// size (≈2–3 GF/s vs ≈3.8–4 GF/s on the dev machine), because the gc
// compiler cannot vectorize the scalar micro-kernel while the contiguous
// axpy loops already run near the scalar pipeline limit and need no packing
// passes. The implementation is kept, tested, and benchmarked as a
// documented negative result; Gemm dispatches to the axpy form. Revisit if
// Go gains SIMD intrinsics.

const (
	// Panel sizes: mc×kc panels of A (packed column-major by micro-rows),
	// kc×nc panels of B.
	gemmMC = 128
	gemmKC = 256
	gemmNC = 512
	// Micro-kernel tile.
	gemmMR = 4
	gemmNR = 4
)

// gemmBlockedNT computes C += alpha·A·Bᵀ with A m×k (lda), B n×k (ldb),
// C m×n (ldc), using packing and the micro-kernel.
func gemmBlockedNT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	var packA [gemmMC * gemmKC]float64
	var packB [gemmKC * gemmNC]float64
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			// Pack B(jc:jc+nc, pc:pc+kc)ᵀ into row-panels of width NR:
			// packB holds, for each micro-column block, kc rows of NR
			// values B[j, l].
			packBPanelsNT(packB[:], b, ldb, jc, pc, nc, kc)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packAPanels(packA[:], a, lda, ic, pc, mc, kc)
				macroKernel(mc, nc, kc, alpha, packA[:], packB[:], c, ldc, ic, jc)
			}
		}
	}
}

// gemmBlockedNN computes C += alpha·A·B with A m×k (lda), B k×n (ldb):
// identical machinery, with B packed untransposed.
func gemmBlockedNN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	var packA [gemmMC * gemmKC]float64
	var packB [gemmKC * gemmNC]float64
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packBPanelsNN(packB[:], b, ldb, jc, pc, nc, kc)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packAPanels(packA[:], a, lda, ic, pc, mc, kc)
				macroKernel(mc, nc, kc, alpha, packA[:], packB[:], c, ldc, ic, jc)
			}
		}
	}
}

// packAPanels packs A(ic:ic+mc, pc:pc+kc) into MR-row panels: panel p holds
// kc columns of MR consecutive rows, stored column-by-column, zero-padded
// to MR at the fringe.
func packAPanels(dst []float64, a []float64, lda, ic, pc, mc, kc int) {
	di := 0
	for i := 0; i < mc; i += gemmMR {
		ib := min(gemmMR, mc-i)
		for l := 0; l < kc; l++ {
			col := a[(pc+l)*lda+ic+i:]
			for r := 0; r < ib; r++ {
				dst[di] = col[r]
				di++
			}
			for r := ib; r < gemmMR; r++ {
				dst[di] = 0
				di++
			}
		}
	}
}

// packBPanelsNT packs Bᵀ(pc:pc+kc, jc:jc+nc) — i.e. B(jc.., pc..) with B
// n×k — into NR-column panels: panel q holds kc rows of NR values
// B[jc+j, pc+l], zero-padded to NR.
func packBPanelsNT(dst []float64, b []float64, ldb, jc, pc, nc, kc int) {
	di := 0
	for j := 0; j < nc; j += gemmNR {
		jb := min(gemmNR, nc-j)
		for l := 0; l < kc; l++ {
			col := b[(pc+l)*ldb+jc+j:]
			for r := 0; r < jb; r++ {
				dst[di] = col[r]
				di++
			}
			for r := jb; r < gemmNR; r++ {
				dst[di] = 0
				di++
			}
		}
	}
}

// packBPanelsNN packs B(pc:pc+kc, jc:jc+nc) with B k×n into the same
// NR-panel layout.
func packBPanelsNN(dst []float64, b []float64, ldb, jc, pc, nc, kc int) {
	di := 0
	for j := 0; j < nc; j += gemmNR {
		jb := min(gemmNR, nc-j)
		for l := 0; l < kc; l++ {
			row := b[(jc+j)*ldb+pc+l:]
			for r := 0; r < jb; r++ {
				dst[di] = row[r*ldb]
				di++
			}
			for r := jb; r < gemmNR; r++ {
				dst[di] = 0
				di++
			}
		}
	}
}

// macroKernel runs the micro-kernel over every MR×NR tile of the packed
// panels, accumulating into C(ic.., jc..).
func macroKernel(mc, nc, kc int, alpha float64, packA, packB []float64, c []float64, ldc, ic, jc int) {
	for j := 0; j < nc; j += gemmNR {
		jb := min(gemmNR, nc-j)
		bp := packB[(j/gemmNR)*kc*gemmNR:]
		for i := 0; i < mc; i += gemmMR {
			ib := min(gemmMR, mc-i)
			ap := packA[(i/gemmMR)*kc*gemmMR:]
			if ib == gemmMR && jb == gemmNR {
				microKernel4x4(kc, alpha, ap, bp, c[(jc+j)*ldc+ic+i:], ldc)
			} else {
				microKernelEdge(kc, ib, jb, alpha, ap, bp, c[(jc+j)*ldc+ic+i:], ldc)
			}
		}
	}
}

// microKernel4x4 computes a full 4×4 tile: C_tile += alpha · Ap·Bp over kc
// steps, keeping the 16 accumulators in registers.
func microKernel4x4(kc int, alpha float64, ap, bp []float64, c []float64, ldc int) {
	var c00, c10, c20, c30 float64
	var c01, c11, c21, c31 float64
	var c02, c12, c22, c32 float64
	var c03, c13, c23, c33 float64
	ai, bi := 0, 0
	for l := 0; l < kc; l++ {
		// Pointer-to-array conversions give the compiler fixed bounds,
		// eliminating per-element checks in this innermost loop.
		av := (*[4]float64)(ap[ai : ai+4])
		bv := (*[4]float64)(bp[bi : bi+4])
		a0, a1, a2, a3 := av[0], av[1], av[2], av[3]
		b0, b1, b2, b3 := bv[0], bv[1], bv[2], bv[3]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
		ai += gemmMR
		bi += gemmNR
	}
	c[0] += alpha * c00
	c[1] += alpha * c10
	c[2] += alpha * c20
	c[3] += alpha * c30
	c[ldc+0] += alpha * c01
	c[ldc+1] += alpha * c11
	c[ldc+2] += alpha * c21
	c[ldc+3] += alpha * c31
	c[2*ldc+0] += alpha * c02
	c[2*ldc+1] += alpha * c12
	c[2*ldc+2] += alpha * c22
	c[2*ldc+3] += alpha * c32
	c[3*ldc+0] += alpha * c03
	c[3*ldc+1] += alpha * c13
	c[3*ldc+2] += alpha * c23
	c[3*ldc+3] += alpha * c33
}

// microKernelEdge handles fringe tiles narrower than MR×NR.
func microKernelEdge(kc, ib, jb int, alpha float64, ap, bp []float64, c []float64, ldc int) {
	var acc [gemmMR * gemmNR]float64
	ai, bi := 0, 0
	for l := 0; l < kc; l++ {
		for jj := 0; jj < jb; jj++ {
			bv := bp[bi+jj]
			for ii := 0; ii < ib; ii++ {
				acc[jj*gemmMR+ii] += ap[ai+ii] * bv
			}
		}
		ai += gemmMR
		bi += gemmNR
	}
	for jj := 0; jj < jb; jj++ {
		for ii := 0; ii < ib; ii++ {
			c[jj*ldc+ii] += alpha * acc[jj*gemmMR+ii]
		}
	}
}
