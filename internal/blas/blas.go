// Package blas provides the dense linear-algebra kernels that symPACK's
// numeric factorization is built on: GEMM, SYRK, TRSM and POTRF, in the
// variants the paper uses (§3.2). The implementations are pure Go.
//
// Matrices are stored column-major, matching the LAPACK convention the paper
// assumes, as flat []float64 slices with an explicit leading dimension (ld).
// Element (i,j) of an m×n matrix a with leading dimension ld lives at
// a[i+j*ld], 0-indexed.
//
// Each kernel has a straightforward reference implementation (ref.go) used
// by the tests to validate the production kernels.
package blas

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Potrf when a non-positive pivot is
// encountered, meaning the input matrix is not (numerically) positive
// definite.
var ErrNotPositiveDefinite = errors.New("blas: matrix is not positive definite")

// Side selects whether the triangular operand in Trsm multiplies from the
// left or the right.
type Side int

// Uplo selects which triangle of a symmetric or triangular matrix is stored.
type Uplo int

// Trans selects whether an operand is transposed.
type Trans int

const (
	Left Side = iota
	Right
)

const (
	Lower Uplo = iota
	Upper
)

const (
	NoTrans Trans = iota
	Transpose
)

func (s Side) String() string {
	if s == Left {
		return "Left"
	}
	return "Right"
}

func (u Uplo) String() string {
	if u == Lower {
		return "Lower"
	}
	return "Upper"
}

func (t Trans) String() string {
	if t == NoTrans {
		return "NoTrans"
	}
	return "Transpose"
}

// checkDims panics with a descriptive message when a kernel is invoked with
// an impossible geometry. Dimension errors are programming errors in the
// solver, not data errors, so a panic is appropriate.
func checkDims(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("blas: "+format, args...))
	}
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C where op is identity or
// transpose per ta/tb. C is m×n, op(A) is m×k, op(B) is k×n.
func Gemm(ta, tb Trans, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	checkDims(m >= 0 && n >= 0 && k >= 0, "Gemm: negative dimension m=%d n=%d k=%d", m, n, k)
	checkDims(ldc >= max(1, m), "Gemm: ldc=%d < m=%d", ldc, m)
	if ta == NoTrans {
		checkDims(lda >= max(1, m), "Gemm: lda=%d < m=%d", lda, m)
	} else {
		checkDims(lda >= max(1, k), "Gemm: lda=%d < k=%d", lda, k)
	}
	if tb == NoTrans {
		checkDims(ldb >= max(1, k), "Gemm: ldb=%d < k=%d", ldb, k)
	} else {
		checkDims(ldb >= max(1, n), "Gemm: ldb=%d < n=%d", ldb, n)
	}
	if m == 0 || n == 0 {
		return
	}
	if beta != 1 {
		scaleRect(m, n, beta, c, ldc)
	}
	if k == 0 || alpha == 0 {
		return
	}
	switch {
	case ta == NoTrans && tb == NoTrans:
		gemmNN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	case ta == NoTrans && tb == Transpose:
		gemmNT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	case ta == Transpose && tb == NoTrans:
		gemmTN(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	default:
		gemmTT(m, n, k, alpha, a, lda, b, ldb, c, ldc)
	}
}

func scaleRect(m, n int, beta float64, c []float64, ldc int) {
	if beta == 0 {
		for j := 0; j < n; j++ {
			col := c[j*ldc : j*ldc+m]
			for i := range col {
				col[i] = 0
			}
		}
		return
	}
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		for i := range col {
			col[i] *= beta
		}
	}
}

// gemmNN: C += alpha * A(m×k) * B(k×n). Column-major: iterate over columns
// of C; for each column j of B, accumulate alpha*b[l,j] times column l of A.
// This is the classic "daxpy" formulation, which is cache-friendly for
// column-major storage.
func gemmNN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		bj := b[j*ldb : j*ldb+k]
		for l := 0; l < k; l++ {
			t := alpha * bj[l]
			if t == 0 {
				continue
			}
			al := a[l*lda : l*lda+m]
			axpy(t, al, cj)
		}
	}
}

// gemmNT: C += alpha * A(m×k) * Bᵀ where B is n×k. b[j,l] multiplies column
// l of A into column j of C.
func gemmNT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for l := 0; l < k; l++ {
		al := a[l*lda : l*lda+m]
		bl := b[l*ldb:]
		for j := 0; j < n; j++ {
			t := alpha * bl[j]
			if t == 0 {
				continue
			}
			cj := c[j*ldc : j*ldc+m]
			axpy(t, al, cj)
		}
	}
}

// gemmTN: C += alpha * Aᵀ * B where A is k×m, B is k×n. c[i,j] gets the dot
// product of column i of A with column j of B — both contiguous.
func gemmTN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		bj := b[j*ldb : j*ldb+k]
		for i := 0; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			cj[i] += alpha * dot(ai, bj)
		}
	}
}

// gemmTT: C += alpha * Aᵀ * Bᵀ where A is k×m, B is n×k.
func gemmTT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		for i := 0; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			var s float64
			for l := 0; l < k; l++ {
				s += ai[l] * b[j+l*ldb]
			}
			cj[i] += alpha * s
		}
	}
}

// axpy computes y += t*x over equal-length slices. The length equality is
// established by the callers slicing both operands to the same extent; the
// explicit bounds help the compiler eliminate per-element checks.
func axpy(t float64, x, y []float64) {
	_ = y[len(x)-1]
	for i, xv := range x {
		y[i] += t * xv
	}
}

func dot(x, y []float64) float64 {
	_ = y[len(x)-1]
	var s float64
	for i, xv := range x {
		s += xv * y[i]
	}
	return s
}

// Syrk performs the symmetric rank-k update used by the paper's diagonal
// update tasks: C = alpha*op(A)*op(A)ᵀ + beta*C, touching only the `uplo`
// triangle of the n×n matrix C. With trans == NoTrans, A is n×k; with
// Transpose, A is k×n.
func Syrk(uplo Uplo, trans Trans, n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	checkDims(n >= 0 && k >= 0, "Syrk: negative dimension n=%d k=%d", n, k)
	checkDims(ldc >= max(1, n), "Syrk: ldc=%d < n=%d", ldc, n)
	if n == 0 {
		return
	}
	// Scale the stored triangle.
	if beta != 1 {
		for j := 0; j < n; j++ {
			var lo, hi int
			if uplo == Lower {
				lo, hi = j, n
			} else {
				lo, hi = 0, j+1
			}
			col := c[j*ldc:]
			if beta == 0 {
				for i := lo; i < hi; i++ {
					col[i] = 0
				}
			} else {
				for i := lo; i < hi; i++ {
					col[i] *= beta
				}
			}
		}
	}
	if k == 0 || alpha == 0 {
		return
	}
	if trans == NoTrans {
		// C += alpha * A*Aᵀ, A is n×k.
		for l := 0; l < k; l++ {
			al := a[l*lda : l*lda+n]
			for j := 0; j < n; j++ {
				t := alpha * al[j]
				if t == 0 {
					continue
				}
				col := c[j*ldc:]
				if uplo == Lower {
					for i := j; i < n; i++ {
						col[i] += t * al[i]
					}
				} else {
					for i := 0; i <= j; i++ {
						col[i] += t * al[i]
					}
				}
			}
		}
		return
	}
	// trans == Transpose: C += alpha * Aᵀ*A, A is k×n.
	for j := 0; j < n; j++ {
		aj := a[j*lda : j*lda+k]
		col := c[j*ldc:]
		if uplo == Lower {
			for i := j; i < n; i++ {
				col[i] += alpha * dot(a[i*lda:i*lda+k], aj)
			}
		} else {
			for i := 0; i <= j; i++ {
				col[i] += alpha * dot(a[i*lda:i*lda+k], aj)
			}
		}
	}
}

// Trsm solves a triangular system with multiple right-hand sides in place:
// op(A)*X = alpha*B (Left) or X*op(A) = alpha*B (Right), overwriting the
// m×n matrix B with X. A is unit-diagonal-free (non-unit) triangular.
//
// symPACK's factorization task F_{i,j} uses the Right/Lower/Transpose
// variant: X * Lᵀ = B where L is the factorized diagonal block.
func Trsm(side Side, uplo Uplo, trans Trans, m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	checkDims(m >= 0 && n >= 0, "Trsm: negative dimension m=%d n=%d", m, n)
	checkDims(ldb >= max(1, m), "Trsm: ldb=%d < m=%d", ldb, m)
	na := m
	if side == Right {
		na = n
	}
	checkDims(lda >= max(1, na), "Trsm: lda=%d < order=%d", lda, na)
	if m == 0 || n == 0 {
		return
	}
	if alpha != 1 {
		scaleRect(m, n, alpha, b, ldb)
	}
	switch {
	case side == Left && uplo == Lower && trans == NoTrans:
		// Solve L*X = B: forward substitution down each column of B.
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := 0; i < m; i++ {
				bj[i] /= a[i+i*lda]
				t := bj[i]
				if t == 0 {
					continue
				}
				ai := a[i*lda:]
				for r := i + 1; r < m; r++ {
					bj[r] -= t * ai[r]
				}
			}
		}
	case side == Left && uplo == Lower && trans == Transpose:
		// Solve Lᵀ*X = B: backward substitution.
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := m - 1; i >= 0; i-- {
				ai := a[i*lda:]
				s := bj[i]
				for r := i + 1; r < m; r++ {
					s -= ai[r] * bj[r]
				}
				bj[i] = s / ai[i]
			}
		}
	case side == Left && uplo == Upper && trans == NoTrans:
		// Solve U*X = B: backward substitution.
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := m - 1; i >= 0; i-- {
				bj[i] /= a[i+i*lda]
				t := bj[i]
				if t == 0 {
					continue
				}
				ai := a[i*lda:]
				for r := 0; r < i; r++ {
					bj[r] -= t * ai[r]
				}
			}
		}
	case side == Left && uplo == Upper && trans == Transpose:
		// Solve Uᵀ*X = B: forward substitution.
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for i := 0; i < m; i++ {
				ai := a[i*lda:]
				s := bj[i]
				for r := 0; r < i; r++ {
					s -= ai[r] * bj[r]
				}
				bj[i] = s / ai[i]
			}
		}
	case side == Right && uplo == Lower && trans == NoTrans:
		// Solve X*L = B, i.e. columns of X from last to first:
		// X[:,j] = (B[:,j] - sum_{r>j} X[:,r]*L[r,j]) / L[j,j].
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			aj := a[j*lda:]
			for r := j + 1; r < n; r++ {
				t := aj[r]
				if t == 0 {
					continue
				}
				br := b[r*ldb : r*ldb+m]
				for i := 0; i < m; i++ {
					bj[i] -= t * br[i]
				}
			}
			d := 1 / aj[j]
			for i := 0; i < m; i++ {
				bj[i] *= d
			}
		}
	case side == Right && uplo == Lower && trans == Transpose:
		// Solve X*Lᵀ = B, columns first to last:
		// X[:,j] = (B[:,j] - sum_{r<j} X[:,r]*L[j,r]) / L[j,j].
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			for r := 0; r < j; r++ {
				t := a[j+r*lda]
				if t == 0 {
					continue
				}
				br := b[r*ldb : r*ldb+m]
				for i := 0; i < m; i++ {
					bj[i] -= t * br[i]
				}
			}
			d := 1 / a[j+j*lda]
			for i := 0; i < m; i++ {
				bj[i] *= d
			}
		}
	case side == Right && uplo == Upper && trans == NoTrans:
		// Solve X*U = B, columns first to last.
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+m]
			aj := a[j*lda:]
			for r := 0; r < j; r++ {
				t := aj[r]
				if t == 0 {
					continue
				}
				br := b[r*ldb : r*ldb+m]
				for i := 0; i < m; i++ {
					bj[i] -= t * br[i]
				}
			}
			d := 1 / aj[j]
			for i := 0; i < m; i++ {
				bj[i] *= d
			}
		}
	default: // Right, Upper, Transpose
		// Solve X*Uᵀ = B, columns last to first.
		for j := n - 1; j >= 0; j-- {
			bj := b[j*ldb : j*ldb+m]
			for r := j + 1; r < n; r++ {
				t := a[j+r*lda]
				if t == 0 {
					continue
				}
				br := b[r*ldb : r*ldb+m]
				for i := 0; i < m; i++ {
					bj[i] -= t * br[i]
				}
			}
			d := 1 / a[j+j*lda]
			for i := 0; i < m; i++ {
				bj[i] *= d
			}
		}
	}
}

// Potrf computes the Cholesky factorization of the n×n symmetric positive
// definite matrix stored in the `uplo` triangle of a, in place. For Lower it
// produces L with A = L·Lᵀ; for Upper it produces U with A = Uᵀ·U. The
// opposite triangle is left untouched. It returns ErrNotPositiveDefinite
// (wrapped with the failing pivot index) when a pivot is ≤ 0 or NaN.
// potrfBlockSize is the panel width of the blocked Cholesky; below twice
// this order the unblocked kernel runs directly.
const potrfBlockSize = 32

// Large Lower factorizations run blocked — panel POTRF, panel TRSM, SYRK
// trailing update — so most flops flow through the level-3 kernels.
func Potrf(uplo Uplo, n int, a []float64, lda int) error {
	checkDims(n >= 0, "Potrf: negative dimension n=%d", n)
	checkDims(lda >= max(1, n), "Potrf: lda=%d < n=%d", lda, n)
	if uplo == Lower && n >= 2*potrfBlockSize {
		return potrfBlockedLower(n, a, lda)
	}
	return potrfUnblocked(uplo, n, a, lda)
}

// potrfBlockedLower runs the right-looking blocked factorization.
func potrfBlockedLower(n int, a []float64, lda int) error {
	for j := 0; j < n; j += potrfBlockSize {
		nb := min(potrfBlockSize, n-j)
		diag := a[j+j*lda:]
		if err := potrfUnblocked(Lower, nb, diag, lda); err != nil {
			return fmt.Errorf("%w (block at %d)", err, j)
		}
		rest := n - j - nb
		if rest == 0 {
			continue
		}
		panel := a[j+nb+j*lda:]
		// L21 = A21 · L11⁻ᵀ.
		Trsm(Right, Lower, Transpose, rest, nb, 1, diag, lda, panel, lda)
		// A22 −= L21·L21ᵀ.
		Syrk(Lower, NoTrans, rest, nb, -1, panel, lda, 1, a[j+nb+(j+nb)*lda:], lda)
	}
	return nil
}

func potrfUnblocked(uplo Uplo, n int, a []float64, lda int) error {
	if uplo == Lower {
		for j := 0; j < n; j++ {
			aj := a[j*lda:]
			// d = a[j,j] - sum_{r<j} L[j,r]^2
			d := aj[j]
			for r := 0; r < j; r++ {
				ljr := a[j+r*lda]
				d -= ljr * ljr
			}
			if d <= 0 || math.IsNaN(d) {
				return fmt.Errorf("%w (pivot %d, value %g)", ErrNotPositiveDefinite, j, d)
			}
			d = math.Sqrt(d)
			aj[j] = d
			// Column below the diagonal:
			// L[i,j] = (a[i,j] - sum_{r<j} L[i,r]*L[j,r]) / d
			for r := 0; r < j; r++ {
				t := a[j+r*lda]
				if t == 0 {
					continue
				}
				ar := a[r*lda:]
				for i := j + 1; i < n; i++ {
					aj[i] -= t * ar[i]
				}
			}
			inv := 1 / d
			for i := j + 1; i < n; i++ {
				aj[i] *= inv
			}
		}
		return nil
	}
	// Upper: factor A = Uᵀ·U using the relation U = (chol(A) for the
	// transposed layout). Work row-wise on the upper triangle.
	for j := 0; j < n; j++ {
		aj := a[j*lda:]
		d := aj[j]
		for r := 0; r < j; r++ {
			urj := aj[r]
			d -= urj * urj
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (pivot %d, value %g)", ErrNotPositiveDefinite, j, d)
		}
		d = math.Sqrt(d)
		aj[j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			ai := a[i*lda:]
			s := ai[j]
			for r := 0; r < j; r++ {
				s -= aj[r] * ai[r]
			}
			ai[j] = s * inv
		}
	}
	return nil
}

// FlopsGemm returns the floating-point operation count of a GEMM with the
// given dimensions; used by the GPU offload heuristics and the machine model.
func FlopsGemm(m, n, k int) int64 { return 2 * int64(m) * int64(n) * int64(k) }

// FlopsSyrk returns the flop count of a SYRK touching one triangle.
func FlopsSyrk(n, k int) int64 { return int64(n) * int64(n+1) * int64(k) }

// FlopsTrsm returns the flop count of a TRSM with an m×n right-hand side and
// a triangular factor of the order implied by side.
func FlopsTrsm(side Side, m, n int) int64 {
	if side == Left {
		return int64(n) * int64(m) * int64(m)
	}
	return int64(m) * int64(n) * int64(n)
}

// FlopsPotrf returns the flop count of an order-n Cholesky factorization.
func FlopsPotrf(n int) int64 { return int64(n) * int64(n) * int64(n) / 3 }
