package symbolic

// Incomplete-Cholesky symbolic analysis: the IC(k) level-of-fill variant of
// Analyze, after Kim et al.'s partitioned-block incomplete Cholesky
// (PAPERS.md) which reuses exactly this supernodal machinery to build a
// preconditioner instead of a full factor. The pipeline is Analyze's —
// fill-reducing ordering, etree, postorder — but the column patterns keep
// only fill whose level stays ≤ k:
//
//	lev(i,j) = 0                                   for a_ij ≠ 0
//	lev(i,j) = min over c<j of lev(i,c)+lev(j,c)+1 for generated fill
//
// plus an optional magnitude pre-filter (DropTol τ: off-diagonal entries
// with |a_ij| < τ·√(|a_ii|·|a_jj|) are removed from the matrix before level
// expansion). The resulting Structure has Incomplete set: the update-closure
// invariant is deliberately broken, and BuildTaskGraph / the engine's
// scatter skip contributions whose target block or row was dropped.

import (
	"math"

	"sympack/internal/etree"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
)

// ICOptions tunes the incomplete analysis.
type ICOptions struct {
	// Level is the maximum fill level k retained. 0 keeps exactly the
	// pattern of A (plus the supernode trapezoid padding); higher levels
	// approach the complete factor.
	Level int
	// DropTol, when positive, removes off-diagonal entries of the permuted
	// matrix with |a_ij| < DropTol·√(|a_ii|·|a_jj|) before level expansion.
	// The filtered matrix is what AnalyzeIC returns, so the numeric phase
	// factors exactly what the pattern describes.
	DropTol float64
}

// AnalyzeIC runs the incomplete symbolic phase and returns the IC(k)
// structure plus the permuted (and, with DropTol, filtered) matrix the
// numeric phase should factor. opt.RelaxRatio is ignored: amalgamation
// introduces explicit zeros, which for a preconditioner would dilute the
// drop rule; supernodes here are strict pattern-equality groups, width-cap
// aside.
func AnalyzeIC(a *matrix.SparseSym, ord ordering.Kind, opt Options, ic ICOptions) (*Structure, *matrix.SparseSym, error) {
	if a.N == 0 {
		return nil, nil, ErrEmptyMatrix
	}
	if ic.Level < 0 {
		ic.Level = 0
	}
	perm1, err := ordering.Compute(ord, a)
	if err != nil {
		return nil, nil, err
	}
	a1, err := a.Permute(perm1)
	if err != nil {
		return nil, nil, err
	}
	t1 := etree.Compute(a1)
	post := t1.Postorder()
	a2, err := a1.Permute(post)
	if err != nil {
		return nil, nil, err
	}
	perm := make([]int32, a.N)
	for k := range perm {
		perm[k] = perm1[post[k]]
	}
	if ic.DropTol > 0 {
		a2 = dropFilter(a2, ic.DropTol)
	}
	tree := etree.Compute(a2)

	st := &Structure{N: a.N, Perm: perm, Tree: tree, Incomplete: true}
	pattern := icPattern(a2, ic.Level)
	st.ColCount = make([]int32, a.N)
	for j := range pattern {
		st.ColCount[j] = int32(len(pattern[j])) + 1
	}
	st.buildICPartition(pattern, opt.MaxSupernodeSize)
	st.buildBlocks()
	st.buildSnTree()
	st.computeCosts()
	return st, a2, nil
}

// dropFilter returns a copy of a with small off-diagonal entries removed:
// |a_ij| < τ·√(|a_ii|·|a_jj|). Diagonal entries always survive. Columns are
// filtered in place of a fresh CSC, so row order is preserved.
func dropFilter(a *matrix.SparseSym, tau float64) *matrix.SparseSym {
	d := a.Diag()
	out := &matrix.SparseSym{N: a.N, ColPtr: make([]int32, a.N+1)}
	for j := 0; j < a.N; j++ {
		dj := math.Abs(d[j])
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowInd[p]
			v := a.Val[p]
			if int(r) != j && math.Abs(v) < tau*math.Sqrt(dj*math.Abs(d[r])) {
				continue
			}
			out.RowInd = append(out.RowInd, r)
			out.Val = append(out.Val, v)
		}
		out.ColPtr[j+1] = int32(len(out.RowInd))
	}
	return out
}

// icPattern computes the IC(k) column patterns: pattern[j] lists the
// off-diagonal rows i > j of column j, ascending, each with fill level ≤ k.
// The classic left-to-right sweep: when column c is finalized it registers
// itself with every later column j of its pattern that could still generate
// admissible fill (lev(j,c)+1 ≤ k); finalizing j then merges each such c's
// rows at candidate level lev(i,c)+lev(j,c)+1, keeping the minimum.
func icPattern(a *matrix.SparseSym, k int) [][]int32 {
	n := a.N
	pattern := make([][]int32, n)
	levels := make([][]int32, n)
	// hitCols[j] lists finalized columns c whose pattern contains j with a
	// level low enough to generate fill in column j; hitLev[j] the matching
	// lev(j,c).
	hitCols := make([][]int32, n)
	hitLev := make([][]int32, n)
	lev := make([]int32, n) // dense workspace, sentinel k+1
	for i := range lev {
		lev[i] = int32(k) + 1
	}
	var touched []int32
	for j := 0; j < n; j++ {
		touched = touched[:0]
		// Level 0: entries of A below the diagonal.
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			r := a.RowInd[p]
			if int(r) == j {
				continue
			}
			if lev[r] > 0 {
				if lev[r] == int32(k)+1 {
					touched = append(touched, r)
				}
				lev[r] = 0
			}
		}
		// Generated fill via each registered earlier column.
		for x, c := range hitCols[j] {
			levJC := hitLev[j][x]
			pc := pattern[c]
			lc := levels[c]
			for y, i := range pc {
				if int(i) <= j {
					continue
				}
				cand := lc[y] + levJC + 1
				if cand > int32(k) {
					continue
				}
				if lev[i] > cand {
					if lev[i] == int32(k)+1 {
						touched = append(touched, i)
					}
					lev[i] = cand
				}
			}
		}
		hitCols[j], hitLev[j] = nil, nil
		sortInt32(touched)
		rows := make([]int32, len(touched))
		lvls := make([]int32, len(touched))
		copy(rows, touched)
		for y, r := range rows {
			lvls[y] = lev[r]
			lev[r] = int32(k) + 1 // reset workspace
		}
		pattern[j], levels[j] = rows, lvls
		// Register with later columns that can still receive fill through j.
		for y, r := range rows {
			if lvls[y]+1 <= int32(k) {
				hitCols[r] = append(hitCols[r], int32(j))
				hitLev[r] = append(hitLev[r], lvls[y])
			}
		}
	}
	return pattern
}

// buildICPartition groups columns into strict supernodes — consecutive
// columns whose patterns nest exactly, pattern(j-1) = {j} ∪ pattern(j), so
// the dense trapezoid stores no entry the IC pattern dropped — applies the
// width cap, and fills Snodes (with exact Rows), SnOf.
func (st *Structure) buildICPartition(pattern [][]int32, maxW int) {
	n := st.N
	var parts []partition
	fc := int32(0)
	for j := 1; j <= n; j++ {
		grow := j < n && nests(pattern[j-1], pattern[j], int32(j)) &&
			(maxW <= 0 || int(int32(j)-fc) < maxW)
		if !grow {
			lc := int32(j - 1)
			parts = append(parts, partition{fc: fc, lc: lc, off: int32(len(pattern[lc]))})
			fc = int32(j)
		}
	}
	st.Snodes = make([]Supernode, len(parts))
	st.SnOf = make([]int32, n)
	for id, p := range parts {
		full := make([]int32, 0, int(p.lc-p.fc+1)+len(pattern[p.lc]))
		for c := p.fc; c <= p.lc; c++ {
			full = append(full, c)
		}
		full = append(full, pattern[p.lc]...)
		st.Snodes[id] = Supernode{ID: int32(id), FirstCol: p.fc, LastCol: p.lc, Rows: full}
		for c := p.fc; c <= p.lc; c++ {
			st.SnOf[c] = int32(id)
		}
	}
}

// nests reports whether prev = {next-col} ∪ cur, the pattern-equality rule
// that admits column next-col into the supernode of its predecessor.
func nests(prev, cur []int32, col int32) bool {
	if len(prev) != len(cur)+1 || len(prev) == 0 || prev[0] != col {
		return false
	}
	for i, r := range cur {
		if prev[i+1] != r {
			return false
		}
	}
	return true
}
