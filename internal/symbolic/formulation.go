package symbolic

// This file defines the two strategy axes that turn the solver from one
// algorithm into a scheduling laboratory (Jacquelin et al.'s observation
// that the task formulation and the block-to-process mapping are
// independent choices):
//
//   - Formulation decides which block's owner computes each update task
//     U_{i,j,k} — equivalently, who aggregates contributions and what
//     must travel on the wire.
//   - MappingKind decides which process owns each block.
//
// Both the real runtime (internal/core) and the performance model
// (internal/des) consume these, so a variant runs identically in both
// worlds. Every (formulation × mapping) pair must pass the conformance
// harness (internal/core/conformance.go) before it may be raced.

import "fmt"

// Formulation selects the task formulation: which block's owner computes
// an update U_{i,j,k} with sources B_{k,j} (BlkA), B_{i,j} (BlkB) and
// target B_{i,k}.
//
//	FanOut  — the target's owner computes. Factored source blocks fan out
//	          from their producers to every consumer (the paper's §3.2).
//	FanIn   — the left operand's owner (owner of B_{i,j}) computes where
//	          the panel was factored; the finished contribution fans in
//	          to the target's owner.
//	FanBoth — the transposed operand's owner (owner of B_{k,j}) computes:
//	          one source block fans out to the compute site and the
//	          contribution fans in to the target — communication in both
//	          directions, the block-level analogue of the fan-both family.
//
// D and F tasks always execute at their block's owner; only update
// placement varies. Contributions are delivered per update, never summed
// in transit, so the target applies them in the canonical order and the
// factor stays bit-identical across formulations, mappings, worker
// counts and rank counts (summed aggregation would trade that
// reproducibility for message volume).
type Formulation uint8

const (
	// FanOut is the paper's formulation (default): updates execute at the
	// target block's owner.
	FanOut Formulation = iota
	// FanIn executes updates at the owner of the left source operand
	// B_{i,j} and ships the contribution to the target.
	FanIn
	// FanBoth executes updates at the owner of the transposed source
	// operand B_{k,j}; sources fan out to it, contributions fan in.
	FanBoth
)

func (f Formulation) String() string {
	switch f {
	case FanIn:
		return "fan-in"
	case FanBoth:
		return "fan-both"
	default:
		return "fan-out"
	}
}

// ParseFormulation reads a CLI spelling of a formulation.
func ParseFormulation(s string) (Formulation, error) {
	switch s {
	case "fanout", "fan-out", "out":
		return FanOut, nil
	case "fanin", "fan-in", "in":
		return FanIn, nil
	case "fanboth", "fan-both", "both":
		return FanBoth, nil
	}
	return FanOut, fmt.Errorf("symbolic: unknown formulation %q (want fan-out|fan-in|fan-both)", s)
}

// ComputeBlock returns the block whose owner computes update u under this
// formulation.
func (f Formulation) ComputeBlock(u *Update) int32 {
	switch f {
	case FanIn:
		return u.BlkB
	case FanBoth:
		return u.BlkA
	default:
		return u.Target
	}
}

// DeliversContributions reports whether updates may execute away from the
// target's owner, so the computed contribution is delivered as a separate
// protocol item with its own apply task at the target. FanOut computes in
// place and applies directly.
func (f Formulation) DeliversContributions() bool { return f != FanOut }

// TaskCount returns the job-wide executed-task count of the formulation:
// one D/F per block and one compute task per update, plus — when
// contributions are delivered — one apply task per update at the target's
// owner.
func (f Formulation) TaskCount(tg *TaskGraph) int {
	n := tg.St.NumBlocks() + len(tg.Updates)
	if f.DeliversContributions() {
		n += len(tg.Updates)
	}
	return n
}

// Formulations lists every formulation, in declaration order.
func Formulations() []Formulation { return []Formulation{FanOut, FanIn, FanBoth} }

// MappingKind selects the block→process distribution.
type MappingKind uint8

const (
	// Map2DCyclic is the paper's 2D block-cyclic distribution (§3.3,
	// default).
	Map2DCyclic MappingKind = iota
	// Map1DCols assigns whole supernode columns cyclically — the layout
	// whose serial bottleneck the 2D map exists to avoid.
	Map1DCols
	// MapSubtree is the proportional subtree-to-subcube mapping: each
	// subtree of the supernodal elimination tree gets a process range
	// sized by its share of the factorization work, and a supernode's
	// blocks are dealt round-robin over its subtree's range. Independent
	// subtrees land on disjoint processes, so their schedules never
	// contend.
	MapSubtree
)

func (m MappingKind) String() string {
	switch m {
	case Map1DCols:
		return "1d-cols"
	case MapSubtree:
		return "subtree"
	default:
		return "2d-cyclic"
	}
}

// ParseMapping reads a CLI spelling of a mapping kind.
func ParseMapping(s string) (MappingKind, error) {
	switch s {
	case "2d", "2d-cyclic", "cyclic2d":
		return Map2DCyclic, nil
	case "1d", "1d-cols", "cols":
		return Map1DCols, nil
	case "subtree", "proportional":
		return MapSubtree, nil
	}
	return Map2DCyclic, fmt.Errorf("symbolic: unknown mapping %q (want 2d|1d|subtree)", s)
}

// MappingKinds lists every mapping kind, in declaration order.
func MappingKinds() []MappingKind { return []MappingKind{Map2DCyclic, Map1DCols, MapSubtree} }

// NewBlockMap constructs the selected distribution over p processes. The
// structure is consulted only by MapSubtree (which needs the supernodal
// tree and work weights); a nil structure falls back to the 2D map so
// structure-free callers cannot silently build a malformed mapping.
func NewBlockMap(kind MappingKind, p int, st *Structure) BlockMap {
	switch kind {
	case Map1DCols:
		if p < 1 {
			p = 1
		}
		return Map1D{NP: p}
	case MapSubtree:
		if st != nil {
			return NewSubtreeMap(st, p)
		}
	}
	return NewMap2D(p)
}

// SubtreeMap is the proportional subtree mapping: supernode k owns the
// contiguous process range [base[k], base[k]+cnt[k]) and block B_{i,k}
// lives on base[k] + i mod cnt[k]. Ranges shrink toward the leaves —
// children split their parent's range proportionally to subtree work —
// which is the classic proportional mapping of sparse Cholesky.
type SubtreeMap struct {
	NP   int
	base []int32
	cnt  []int32
}

// NewSubtreeMap computes the proportional mapping from the supernodal
// elimination tree, weighting each subtree by the stored nonzeros of its
// supernodes (a deterministic integer proxy for factorization work).
func NewSubtreeMap(st *Structure, p int) *SubtreeMap {
	if p < 1 {
		p = 1
	}
	nsn := len(st.Snodes)
	m := &SubtreeMap{NP: p, base: make([]int32, nsn), cnt: make([]int32, nsn)}
	// Per-supernode work weight, then subtree sums. Supernodal parents
	// have higher indices, so one ascending sweep accumulates children
	// into parents.
	sub := make([]int64, nsn)
	for k := 0; k < nsn; k++ {
		nc := int64(st.Snodes[k].NCols())
		blks := st.SnodeBlocks(int32(k))
		for bi := range blks {
			sub[k] += int64(blks[bi].NRows) * nc
		}
		if sub[k] < 1 {
			sub[k] = 1
		}
	}
	children := make([][]int32, nsn)
	var roots []int32
	for k := 0; k < nsn; k++ {
		if par := st.SnParent[k]; par != -1 {
			children[par] = append(children[par], int32(k))
		} else {
			roots = append(roots, int32(k))
		}
	}
	for k := 0; k < nsn; k++ {
		if par := st.SnParent[k]; par != -1 {
			sub[par] += sub[k]
		}
	}
	// Iterative proportional range assignment (explicit stack: supernodal
	// chains can be deep). Children carve contiguous sub-ranges of the
	// parent's range sized by subtree weight, every child at least one
	// process; a forest splits [0, p) the same way under a virtual root.
	type span struct {
		kids []int32
		lo   int32
		hi   int32
	}
	stack := []span{{kids: roots, lo: 0, hi: int32(p)}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var total int64
		for _, c := range s.kids {
			total += sub[c]
		}
		var acc int64
		width := int64(s.hi - s.lo)
		for _, c := range s.kids {
			clo := s.lo + int32(acc*width/total)
			acc += sub[c]
			chi := s.lo + int32(acc*width/total)
			if chi <= clo {
				chi = clo + 1 // every subtree keeps at least one process
			}
			m.base[c], m.cnt[c] = clo, chi-clo
			if len(children[c]) > 0 {
				stack = append(stack, span{kids: children[c], lo: clo, hi: chi})
			}
		}
	}
	return m
}

// Owner returns the process owning block B_{i,k}: round-robin by row
// supernode over supernode k's process range.
func (m *SubtreeMap) Owner(i, k int32) int {
	return int(m.base[k]) + int(i)%int(m.cnt[k])
}

// P returns the process count.
func (m *SubtreeMap) P() int { return m.NP }
