// Package symbolic implements symPACK's symbolic factorization phase
// (paper §3.1): it computes the structure of the Cholesky factor L,
// partitions columns into supernodes, partitions supernodes into dense
// blocks (paper Algorithm 2), builds the supernodal elimination tree, and
// derives the fan-out task graph (§3.2) that the numeric phase executes.
package symbolic

import (
	"errors"
	"fmt"

	"sympack/internal/etree"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
)

// Options tunes the supernode partition.
type Options struct {
	// MaxSupernodeSize splits supernodes wider than this many columns to
	// expose parallelism; 0 means no cap.
	MaxSupernodeSize int
	// RelaxRatio enables supernode amalgamation: a child supernode is
	// merged into a column-contiguous parent when the estimated fraction
	// of explicit zeros introduced stays below this ratio. 0 keeps strict
	// fundamental supernodes.
	RelaxRatio float64
}

// DefaultOptions mirror the paper's practical configuration: modest
// amalgamation to fatten tiny supernodes and a cap that keeps single
// supernodes from serializing the DAG.
func DefaultOptions() Options {
	return Options{MaxSupernodeSize: 128, RelaxRatio: 0.25}
}

// Supernode is a set of contiguous columns of L sharing one row structure
// (paper §2.2). Rows holds the full structure: the supernode's own columns
// first (the dense diagonal block), then the off-diagonal rows in ascending
// order.
type Supernode struct {
	ID       int32
	FirstCol int32 // inclusive
	LastCol  int32 // inclusive
	Rows     []int32
}

// NCols returns the supernode width.
func (s *Supernode) NCols() int { return int(s.LastCol - s.FirstCol + 1) }

// NRows returns the height of the supernode's dense storage.
func (s *Supernode) NRows() int { return len(s.Rows) }

// Block is a dense submatrix of a supernode (paper Algorithm 2): the rows
// of column-supernode Snode that fall inside row-supernode RowSn's column
// range. Block 0 of every supernode is its diagonal block (RowSn == Snode).
type Block struct {
	ID     int32 // global block index
	Snode  int32 // column supernode (k in B_{i,k})
	RowSn  int32 // row supernode (i in B_{i,k})
	RowOff int32 // starting offset in Snode.Rows
	NRows  int32
}

// IsDiag reports whether the block is a diagonal block.
func (b *Block) IsDiag() bool { return b.Snode == b.RowSn }

// Structure is the output of the symbolic phase. All indices refer to the
// permuted matrix returned by Analyze.
type Structure struct {
	N    int
	Perm []int32 // composed new-to-old permutation (ordering ∘ postorder)

	Tree     *etree.Tree // column elimination tree (postordered)
	ColCount []int32     // nnz per column of L (diagonal included), pre-padding

	Snodes []Supernode
	SnOf   []int32 // column → supernode id

	Blocks   []Block // grouped by supernode, diagonal block first
	BlockPtr []int32 // supernode → first index into Blocks; len = #snodes+1

	SnParent []int32 // supernodal elimination tree (parent supernode or -1)

	NnzL       int64 // structural nonzeros of L, explicit-zero padding included
	FactorFlop int64 // flop count of the supernodal factorization

	// Incomplete marks an IC(k) structure (AnalyzeIC): fill above the level
	// limit has been dropped, so the update-closure invariant does not hold
	// and update tasks whose target block was dropped are discarded rather
	// than applied (the standard right-looking incomplete-factorization
	// rule).
	Incomplete bool
}

// NumSupernodes returns the supernode count.
func (s *Structure) NumSupernodes() int { return len(s.Snodes) }

// NumBlocks returns the total block count.
func (s *Structure) NumBlocks() int { return len(s.Blocks) }

// SnodeBlocks returns the blocks of supernode k (diagonal block first).
func (s *Structure) SnodeBlocks(k int32) []Block {
	return s.Blocks[s.BlockPtr[k]:s.BlockPtr[k+1]]
}

// DiagBlock returns the diagonal block of supernode k.
func (s *Structure) DiagBlock(k int32) *Block { return &s.Blocks[s.BlockPtr[k]] }

// FindBlock returns the global index of block B_{rowSn, snode}, or -1 when
// the structure has no such block. Blocks within a supernode are sorted by
// RowSn, so a binary search suffices.
func (s *Structure) FindBlock(rowSn, snode int32) int32 {
	lo, hi := s.BlockPtr[snode], s.BlockPtr[snode+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case s.Blocks[mid].RowSn < rowSn:
			lo = mid + 1
		case s.Blocks[mid].RowSn > rowSn:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// ErrEmptyMatrix is returned for matrices with no columns.
var ErrEmptyMatrix = errors.New("symbolic: empty matrix")

// Analyze runs the complete symbolic phase: fill-reducing ordering,
// elimination tree + postorder, column counts, supernode partition (with
// optional amalgamation and width capping), exact supernodal structure,
// block partitioning, and the supernodal tree. It returns the structure and
// the permuted matrix the numeric phase should factor.
func Analyze(a *matrix.SparseSym, ord ordering.Kind, opt Options) (*Structure, *matrix.SparseSym, error) {
	if a.N == 0 {
		return nil, nil, ErrEmptyMatrix
	}
	perm1, err := ordering.Compute(ord, a)
	if err != nil {
		return nil, nil, err
	}
	a1, err := a.Permute(perm1)
	if err != nil {
		return nil, nil, err
	}
	t1 := etree.Compute(a1)
	post := t1.Postorder()
	a2, err := a1.Permute(post)
	if err != nil {
		return nil, nil, err
	}
	// Composed new-to-old permutation.
	perm := make([]int32, a.N)
	for k := range perm {
		perm[k] = perm1[post[k]]
	}
	tree := etree.Compute(a2)
	if !tree.IsPostordered() {
		return nil, nil, errors.New("symbolic: internal: postordered etree expected")
	}

	st := &Structure{N: a.N, Perm: perm, Tree: tree}
	// The matrix is postordered, so the identity is a valid postorder for
	// the skeleton-based count algorithm.
	ident := make([]int32, a.N)
	for i := range ident {
		ident[i] = int32(i)
	}
	st.ColCount = tree.ColCounts(a2, ident)
	st.buildPartition(opt)
	st.buildSupernodeRows(a2)
	st.buildBlocks()
	st.buildSnTree()
	st.computeCosts()
	return st, a2, nil
}

// colCounts computes nnz per column of L (diagonal included) by symbolic
// elimination; it is the O(nnz(L)) reference implementation the tests hold
// the production path (etree.Tree.ColCounts, the near-linear skeleton
// algorithm) against. Child structures are freed as soon as their parent
// consumes them, so peak memory tracks the elimination front, not nnz(L).
func colCounts(a *matrix.SparseSym, tree *etree.Tree) []int32 {
	n := a.N
	counts := make([]int32, n)
	structs := make([][]int32, n)
	children := tree.Children()
	marker := make([]int32, n)
	for i := range marker {
		marker[i] = -1
	}
	for j := 0; j < n; j++ {
		jj := int32(j)
		marker[j] = jj
		col := []int32{}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if r := a.RowInd[p]; marker[r] != jj {
				marker[r] = jj
				col = append(col, r)
			}
		}
		for _, c := range children[j] {
			for _, r := range structs[c] {
				if r == jj || marker[r] == jj {
					continue
				}
				marker[r] = jj
				col = append(col, r)
			}
			structs[c] = nil // free: consumed by this parent
		}
		counts[j] = int32(len(col)) + 1 // + diagonal
		structs[j] = col
	}
	return counts
}

// partition is a supernode prototype during partition construction:
// column range plus the (estimated, pre-padding) off-diagonal row count and
// the explicit zeros accumulated by amalgamation so far.
type partition struct {
	fc, lc int32
	off    int32
	zeros  int64
}

// buildPartition derives the final column partition: fundamental supernodes
// from counts and the etree, then amalgamation, then width capping. SnOf is
// filled; Snodes get their column ranges (Rows comes later).
func (st *Structure) buildPartition(opt Options) {
	n := st.N
	parent := st.Tree.Parent
	var parts []partition
	fc := int32(0)
	for j := 1; j <= n; j++ {
		fund := j < n && parent[j-1] == int32(j) && st.ColCount[j] == st.ColCount[j-1]-1
		if !fund {
			lc := int32(j - 1)
			parts = append(parts, partition{fc: fc, lc: lc, off: st.ColCount[fc] - (lc - fc + 1)})
			fc = int32(j)
		}
	}
	if opt.RelaxRatio > 0 {
		parts = amalgamate(parts, parent, opt.RelaxRatio, opt.MaxSupernodeSize)
	}
	if opt.MaxSupernodeSize > 0 {
		parts = capWidth(parts, opt.MaxSupernodeSize)
	}
	st.Snodes = make([]Supernode, len(parts))
	st.SnOf = make([]int32, n)
	for id, p := range parts {
		st.Snodes[id] = Supernode{ID: int32(id), FirstCol: p.fc, LastCol: p.lc}
		for c := p.fc; c <= p.lc; c++ {
			st.SnOf[c] = int32(id)
		}
	}
}

// amalgamate greedily merges a supernode into its column successor when the
// successor is its supernodal parent (first off-diagonal row falls inside
// it — implied here by contiguity plus a nonempty off-diagonal) and the
// estimated padding stays below ratio. For a fundamental child whose first
// off-diagonal row lands in the parent, the merged off-diagonal structure
// equals the parent's (Liu's fill lemma), which is what the estimate uses;
// the exact structure is recomputed afterwards, so the estimate only
// affects partition quality, never correctness.
// The ratio bounds the *cumulative* explicit zeros of the merged supernode,
// not just the increment, so chains of merges cannot compound padding
// beyond ratio; the width cap is enforced here too, because splitting an
// over-padded supernode afterwards would keep its padding.
func amalgamate(parts []partition, parent []int32, ratio float64, maxW int) []partition {
	out := make([]partition, 0, len(parts))
	for _, p := range parts {
		out = append(out, p)
		for len(out) >= 2 {
			b := out[len(out)-1]
			a := out[len(out)-2]
			if a.lc+1 != b.fc || a.off == 0 {
				break
			}
			// b must be a's supernodal parent: the etree parent of a's
			// last column (its first off-diagonal row) lands inside b.
			if fp := parent[a.lc]; fp == -1 || fp > b.lc {
				break
			}
			wa := a.lc - a.fc + 1
			wb := b.lc - b.fc + 1
			w := wa + wb
			if maxW > 0 && int(w) > maxW {
				break
			}
			cellsA := int64(wa) * int64(wa+a.off)
			cellsB := int64(wb) * int64(wb+b.off)
			cellsM := int64(w) * int64(w+b.off)
			pad := cellsM - cellsA - cellsB
			if pad < 0 {
				pad = 0
			}
			zeros := a.zeros + b.zeros + pad
			if float64(zeros) > ratio*float64(cellsM) {
				break
			}
			out = out[:len(out)-2]
			out = append(out, partition{fc: a.fc, lc: b.lc, off: b.off, zeros: zeros})
		}
	}
	return out
}

// capWidth splits supernodes wider than maxW columns into near-equal
// chunks. A chunk's off-diagonal rows gain the columns of the chunks that
// follow it (dense by supernodality); the exact structure recomputation
// handles that automatically.
func capWidth(parts []partition, maxW int) []partition {
	out := make([]partition, 0, len(parts))
	for _, p := range parts {
		w := int(p.lc - p.fc + 1)
		if w <= maxW {
			out = append(out, p)
			continue
		}
		nchunks := (w + maxW - 1) / maxW
		base := w / nchunks
		extra := w % nchunks
		fc := p.fc
		for c := 0; c < nchunks; c++ {
			cw := base
			if c < extra {
				cw++
			}
			lc := fc + int32(cw) - 1
			out = append(out, partition{fc: fc, lc: lc, off: p.off + (p.lc - lc)})
			fc = lc + 1
		}
	}
	return out
}

// buildSupernodeRows computes the exact row structure of every supernode in
// the final partition by bottom-up supernodal symbolic factorization:
//
//	rows(s) = offdiagA(cols of s) ∪ ⋃_{children c} {r ∈ rows(c) : r > lc_s}
//
// where a child is any supernode whose first off-diagonal row lands in s.
// This propagation is exact for the padded partition: every row introduced
// by amalgamation or capping flows into all ancestors that need it, which
// is precisely the closure property the update tasks' target lookup relies
// on.
func (st *Structure) buildSupernodeRows(a *matrix.SparseSym) {
	n := st.N
	nsn := len(st.Snodes)
	contrib := make([][][]int32, nsn) // per supernode: list of contributed sorted row slices
	marker := make([]int32, n)
	for i := range marker {
		marker[i] = -1
	}
	for k := 0; k < nsn; k++ {
		sn := &st.Snodes[k]
		kk := int32(k)
		var rows []int32
		// Off-diagonal entries of A in this supernode's columns.
		for c := sn.FirstCol; c <= sn.LastCol; c++ {
			for p := a.ColPtr[c]; p < a.ColPtr[c+1]; p++ {
				r := a.RowInd[p]
				if r > sn.LastCol && marker[r] != kk {
					marker[r] = kk
					rows = append(rows, r)
				}
			}
		}
		// Child contributions.
		for _, cl := range contrib[k] {
			for _, r := range cl {
				if r > sn.LastCol && marker[r] != kk {
					marker[r] = kk
					rows = append(rows, r)
				}
			}
		}
		contrib[k] = nil
		sortInt32(rows)
		// Assemble full Rows: own columns then off-diagonal.
		full := make([]int32, 0, sn.NCols()+len(rows))
		for c := sn.FirstCol; c <= sn.LastCol; c++ {
			full = append(full, c)
		}
		full = append(full, rows...)
		sn.Rows = full
		// Contribute to the parent.
		if len(rows) > 0 {
			p := st.SnOf[rows[0]]
			plc := st.Snodes[p].LastCol
			// Rows beyond the parent's columns propagate further.
			cut := len(rows)
			for i, r := range rows {
				if r > plc {
					cut = i
					break
				}
			}
			if cut < len(rows) {
				contrib[p] = append(contrib[p], rows[cut:])
			}
		}
	}
}

func sortInt32(a []int32) {
	// Shell sort: avoids sort.Slice allocations in this hot path.
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(a); i++ {
			x := a[i]
			j := i
			for ; j >= gap && a[j-gap] > x; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = x
		}
	}
}

// buildBlocks partitions each supernode's rows into blocks (Algorithm 2):
// the diagonal block first, then one block per distinct row-supernode among
// the off-diagonal rows. Rows are sorted and supernodes own contiguous
// column ranges, so each block is a contiguous run.
func (st *Structure) buildBlocks() {
	nsn := len(st.Snodes)
	st.BlockPtr = make([]int32, nsn+1)
	var blocks []Block
	for k := 0; k < nsn; k++ {
		sn := &st.Snodes[k]
		st.BlockPtr[k] = int32(len(blocks))
		nc := int32(sn.NCols())
		blocks = append(blocks, Block{
			ID: int32(len(blocks)), Snode: int32(k), RowSn: int32(k),
			RowOff: 0, NRows: nc,
		})
		off := nc
		for off < int32(len(sn.Rows)) {
			rsn := st.SnOf[sn.Rows[off]]
			start := off
			for off < int32(len(sn.Rows)) && st.SnOf[sn.Rows[off]] == rsn {
				off++
			}
			blocks = append(blocks, Block{
				ID: int32(len(blocks)), Snode: int32(k), RowSn: rsn,
				RowOff: start, NRows: off - start,
			})
		}
	}
	st.BlockPtr[nsn] = int32(len(blocks))
	st.Blocks = blocks
}

// buildSnTree derives the supernodal elimination tree: the parent of
// supernode s is the supernode containing the first off-diagonal row of s.
func (st *Structure) buildSnTree() {
	nsn := len(st.Snodes)
	st.SnParent = make([]int32, nsn)
	for k := 0; k < nsn; k++ {
		sn := &st.Snodes[k]
		if sn.NRows() == sn.NCols() {
			st.SnParent[k] = -1
			continue
		}
		st.SnParent[k] = st.SnOf[sn.Rows[sn.NCols()]]
	}
}

// computeCosts fills NnzL and FactorFlop from the supernode partition
// (explicit padding included, mirroring what the numeric phase stores and
// computes).
func (st *Structure) computeCosts() {
	var nnz, flop int64
	for k := range st.Snodes {
		sn := &st.Snodes[k]
		nc := int64(sn.NCols())
		below := int64(sn.NRows()) - nc
		// Dense trapezoid: triangle + rectangle.
		nnz += nc*(nc+1)/2 + below*nc
		// POTRF of the diagonal + TRSM of the panel + outer-product updates.
		flop += nc * nc * nc / 3
		flop += below * nc * nc
		flop += below * below * nc
	}
	st.NnzL = nnz
	st.FactorFlop = flop
}

// Validate checks the structural invariants the numeric phase depends on.
func (st *Structure) Validate() error {
	n := st.N
	if err := ordering.Validate(st.Perm, n); err != nil {
		return err
	}
	// Supernodes tile [0,n) contiguously and in order.
	next := int32(0)
	for k := range st.Snodes {
		sn := &st.Snodes[k]
		if sn.FirstCol != next {
			return fmt.Errorf("symbolic: supernode %d starts at %d, want %d", k, sn.FirstCol, next)
		}
		if sn.LastCol < sn.FirstCol {
			return fmt.Errorf("symbolic: supernode %d empty", k)
		}
		next = sn.LastCol + 1
		for c := 0; c < sn.NCols(); c++ {
			if sn.Rows[c] != sn.FirstCol+int32(c) {
				return fmt.Errorf("symbolic: supernode %d diagonal rows corrupt", k)
			}
		}
		prev := sn.LastCol
		for _, r := range sn.Rows[sn.NCols():] {
			if r <= prev || r >= int32(n) {
				return fmt.Errorf("symbolic: supernode %d off-diag rows not increasing", k)
			}
			prev = r
		}
		for c := sn.FirstCol; c <= sn.LastCol; c++ {
			if st.SnOf[c] != int32(k) {
				return fmt.Errorf("symbolic: SnOf[%d] != %d", c, k)
			}
		}
	}
	if next != int32(n) {
		return fmt.Errorf("symbolic: supernodes cover %d of %d columns", next, n)
	}
	// Blocks tile each supernode's rows, diagonal block first, RowSn
	// ascending.
	for k := range st.Snodes {
		sn := &st.Snodes[k]
		blks := st.SnodeBlocks(int32(k))
		if len(blks) == 0 || !blks[0].IsDiag() {
			return fmt.Errorf("symbolic: supernode %d missing diagonal block", k)
		}
		off := int32(0)
		prevSn := int32(-1)
		for bi := range blks {
			b := &blks[bi]
			if b.Snode != int32(k) {
				return fmt.Errorf("symbolic: block %d wrong owner", b.ID)
			}
			if b.RowOff != off {
				return fmt.Errorf("symbolic: block %d offset %d, want %d", b.ID, b.RowOff, off)
			}
			if b.RowSn <= prevSn {
				return fmt.Errorf("symbolic: block %d RowSn not increasing", b.ID)
			}
			prevSn = b.RowSn
			for r := b.RowOff; r < b.RowOff+b.NRows; r++ {
				if st.SnOf[sn.Rows[r]] != b.RowSn {
					return fmt.Errorf("symbolic: block %d contains foreign row", b.ID)
				}
			}
			off += b.NRows
		}
		if int(off) != sn.NRows() {
			return fmt.Errorf("symbolic: supernode %d blocks cover %d of %d rows", k, off, sn.NRows())
		}
	}
	// Supernodal tree is topological.
	for k, p := range st.SnParent {
		if p != -1 && p <= int32(k) {
			return fmt.Errorf("symbolic: snode parent %d ≤ %d", p, k)
		}
	}
	// Update-closure: for every supernode j and every pair of off-diagonal
	// blocks (B_{k,j}, B_{i,j}) with i ≥ k, the target B_{i,k} must exist.
	// Incomplete structures drop fill, so closure is exactly the invariant
	// they give up; their dropped-target updates are skipped at task-graph
	// construction instead.
	if st.Incomplete {
		return nil
	}
	for j := range st.Snodes {
		blks := st.SnodeBlocks(int32(j))[1:]
		for x := range blks {
			for y := x; y < len(blks); y++ {
				k, i := blks[x].RowSn, blks[y].RowSn
				if st.FindBlock(i, k) < 0 {
					return fmt.Errorf("symbolic: missing update target B[%d,%d] for source supernode %d", i, k, j)
				}
			}
		}
	}
	return nil
}
