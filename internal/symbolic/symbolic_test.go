package symbolic

import (
	"testing"
	"testing/quick"

	"sympack/internal/gen"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
)

func analyze(t *testing.T, m *matrix.SparseSym, ord ordering.Kind, opt Options) (*Structure, *matrix.SparseSym) {
	t.Helper()
	st, pm, err := Analyze(m, ord, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	return st, pm
}

// bruteLStruct computes the exact scalar structure of L for a permuted
// matrix via symbolic elimination (sets).
func bruteLStruct(a *matrix.SparseSym) []map[int32]bool {
	n := a.N
	rows := make([]map[int32]bool, n)
	for j := 0; j < n; j++ {
		rows[j] = map[int32]bool{int32(j): true}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			rows[j][a.RowInd[p]] = true
		}
	}
	for j := 0; j < n; j++ {
		var parent int32 = -1
		for r := range rows[j] {
			if r > int32(j) && (parent == -1 || r < parent) {
				parent = r
			}
		}
		if parent >= 0 {
			for r := range rows[j] {
				if r > int32(j) && r != parent {
					rows[parent][r] = true
				}
			}
		}
	}
	return rows
}

func testMats() map[string]*matrix.SparseSym {
	return map[string]*matrix.SparseSym{
		"laplace2d": gen.Laplace2D(8, 8),
		"laplace3d": gen.Laplace3D(4, 3, 3),
		"flan":      gen.Flan3D(2, 2, 2, 1),
		"bone":      gen.Bone3D(5, 4, 4, 0.3, 2),
		"thermal":   gen.Thermal2D(12, 12, 3, 3),
		"random":    gen.RandomSPD(40, 0.1, 4),
		"dense":     gen.RandomSPD(12, 1.0, 5),
		"diag":      gen.RandomSPD(6, 0, 6),
		"single":    gen.Laplace2D(1, 1),
	}
}

func TestAnalyzeAllMatricesAllOrderings(t *testing.T) {
	for name, m := range testMats() {
		for _, ord := range []ordering.Kind{ordering.Natural, ordering.NestedDissection, ordering.MinDegree} {
			st, pm := analyze(t, m, ord, DefaultOptions())
			if pm.N != m.N {
				t.Fatalf("%s: permuted n mismatch", name)
			}
			if st.NnzL < int64(m.Nnz()) {
				t.Fatalf("%s/%v: NnzL %d below nnz(A) %d", name, ord, st.NnzL, m.Nnz())
			}
		}
	}
}

// The supernodal structure must cover the exact scalar structure of L:
// every true nonzero (r, c) of L lies inside the supernode of c's rows.
func TestSupernodeStructureCoversL(t *testing.T) {
	for name, m := range testMats() {
		for _, opt := range []Options{{}, DefaultOptions(), {MaxSupernodeSize: 2}, {RelaxRatio: 0.9}} {
			st, pm := analyze(t, m, ordering.NestedDissection, opt)
			brute := bruteLStruct(pm)
			for j := 0; j < pm.N; j++ {
				sn := &st.Snodes[st.SnOf[j]]
				inRows := map[int32]bool{}
				for _, r := range sn.Rows {
					inRows[r] = true
				}
				for r := range brute[j] {
					if r >= int32(j) && !inRows[r] {
						t.Fatalf("%s opt=%+v: L(%d,%d) nonzero but row missing from supernode %d", name, opt, r, j, st.SnOf[j])
					}
				}
			}
		}
	}
}

// With strict options (no relaxation, no cap) and the natural ordering the
// supernodal structure must equal the scalar structure exactly — no padding.
func TestStrictSupernodesExact(t *testing.T) {
	for name, m := range testMats() {
		st, pm := analyze(t, m, ordering.Natural, Options{})
		brute := bruteLStruct(pm)
		var bruteNnz int64
		for j := 0; j < pm.N; j++ {
			for r := range brute[j] {
				if r >= int32(j) {
					bruteNnz++
				}
			}
		}
		// Fundamental supernodes store the dense trapezoid, which for an
		// exact partition equals the scalar count: struct(c) within a
		// supernode is the suffix of the first column's struct.
		if st.NnzL != bruteNnz {
			t.Fatalf("%s: supernodal nnz %d != scalar nnz %d", name, st.NnzL, bruteNnz)
		}
	}
}

func TestColCountMatchesBrute(t *testing.T) {
	m := gen.Laplace2D(7, 6)
	st, pm := analyze(t, m, ordering.NestedDissection, DefaultOptions())
	brute := bruteLStruct(pm)
	for j := 0; j < pm.N; j++ {
		cnt := int32(0)
		for r := range brute[j] {
			if r >= int32(j) {
				cnt++
			}
		}
		if st.ColCount[j] != cnt {
			t.Fatalf("ColCount[%d] = %d, want %d", j, st.ColCount[j], cnt)
		}
	}
}

func TestMaxSupernodeSizeRespected(t *testing.T) {
	m := gen.Flan3D(3, 3, 3, 1) // dense supernodes
	for _, cap := range []int{1, 2, 5, 16} {
		st, _ := analyze(t, m, ordering.NestedDissection, Options{MaxSupernodeSize: cap})
		for k := range st.Snodes {
			if w := st.Snodes[k].NCols(); w > cap {
				t.Fatalf("cap %d: supernode %d has width %d", cap, k, w)
			}
		}
	}
}

func TestRelaxationReducesSupernodeCount(t *testing.T) {
	m := gen.Thermal2D(20, 20, 3, 1) // thin supernodes
	strict, _ := analyze(t, m, ordering.NestedDissection, Options{})
	relaxed, _ := analyze(t, m, ordering.NestedDissection, Options{RelaxRatio: 0.5})
	if relaxed.NumSupernodes() >= strict.NumSupernodes() {
		t.Fatalf("relaxation did not merge: %d vs %d", relaxed.NumSupernodes(), strict.NumSupernodes())
	}
	if relaxed.NnzL < strict.NnzL {
		t.Fatal("relaxation cannot shrink storage")
	}
}

func TestFindBlock(t *testing.T) {
	m := gen.Laplace2D(10, 10)
	st, _ := analyze(t, m, ordering.NestedDissection, DefaultOptions())
	for bi := range st.Blocks {
		b := &st.Blocks[bi]
		if got := st.FindBlock(b.RowSn, b.Snode); got != b.ID {
			t.Fatalf("FindBlock(%d,%d) = %d, want %d", b.RowSn, b.Snode, got, b.ID)
		}
	}
	if st.FindBlock(int32(st.NumSupernodes()-1), 0) >= 0 {
		// only valid if such block exists; look for a guaranteed miss:
		// a diagonal-only structure won't have B_{last, 0} unless fill
		// created it. Use an explicit absent pair instead:
		_ = 0
	}
	if got := st.FindBlock(-5, 0); got != -1 {
		t.Fatalf("FindBlock miss = %d, want -1", got)
	}
}

func TestTaskGraphDependencyAccounting(t *testing.T) {
	for name, m := range testMats() {
		st, _ := analyze(t, m, ordering.NestedDissection, DefaultOptions())
		tg := BuildTaskGraph(st)
		// Each update's source blocks belong to SrcSn and target to the
		// block B_{i,k} with k = RowSn(BlkA), i = RowSn(BlkB).
		for ui := range tg.Updates {
			u := &tg.Updates[ui]
			a, b := &st.Blocks[u.BlkA], &st.Blocks[u.BlkB]
			tgt := &st.Blocks[u.Target]
			if a.Snode != u.SrcSn || b.Snode != u.SrcSn {
				t.Fatalf("%s: update %d sources not in SrcSn", name, ui)
			}
			if a.IsDiag() || b.IsDiag() {
				t.Fatalf("%s: update %d uses a diagonal block as source", name, ui)
			}
			if tgt.Snode != a.RowSn || tgt.RowSn != b.RowSn {
				t.Fatalf("%s: update %d target mismatch", name, ui)
			}
			if u.SrcSn >= tgt.Snode {
				t.Fatalf("%s: update %d flows backwards", name, ui)
			}
			if u.IsSyrk() != tgt.IsDiag() {
				t.Fatalf("%s: update %d syrk/diag mismatch", name, ui)
			}
		}
		// InUpdates sums match the update count.
		var sum int64
		for _, c := range tg.InUpdates {
			sum += int64(c)
		}
		if sum != int64(len(tg.Updates)) {
			t.Fatalf("%s: InUpdates sum %d != updates %d", name, sum, len(tg.Updates))
		}
		// UpdatesBySource covers each update once per distinct source.
		var srcRefs int64
		for _, l := range tg.UpdatesBySource {
			srcRefs += int64(len(l))
		}
		var want int64
		for ui := range tg.Updates {
			if tg.Updates[ui].IsSyrk() {
				want++
			} else {
				want += 2
			}
		}
		if srcRefs != want {
			t.Fatalf("%s: source refs %d != %d", name, srcRefs, want)
		}
		if tg.NumTasks() <= 0 {
			t.Fatalf("%s: no tasks", name)
		}
	}
}

// Update tasks per supernode: a supernode with q off-diagonal blocks must
// emit exactly q(q+1)/2 updates.
func TestUpdateCountFormula(t *testing.T) {
	m := gen.Laplace2D(12, 12)
	st, _ := analyze(t, m, ordering.NestedDissection, DefaultOptions())
	tg := BuildTaskGraph(st)
	perSn := make([]int, st.NumSupernodes())
	for ui := range tg.Updates {
		perSn[tg.Updates[ui].SrcSn]++
	}
	for k := 0; k < st.NumSupernodes(); k++ {
		q := len(st.SnodeBlocks(int32(k))) - 1
		if perSn[k] != q*(q+1)/2 {
			t.Fatalf("supernode %d: %d updates, want %d", k, perSn[k], q*(q+1)/2)
		}
	}
}

func TestMap2D(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8, 12, 16, 64} {
		m := NewMap2D(p)
		if m.P() != p {
			t.Fatalf("p=%d: grid %dx%d", p, m.Pr, m.Pc)
		}
		if m.Pr > m.Pc {
			t.Fatalf("p=%d: grid not row-minor %dx%d", p, m.Pr, m.Pc)
		}
		// Owners are within range and cyclic.
		for i := int32(0); i < 10; i++ {
			for k := int32(0); k < 10; k++ {
				o := m.Owner(i, k)
				if o < 0 || o >= p {
					t.Fatalf("owner out of range: %d", o)
				}
				if o != m.Owner(i+int32(m.Pr), k) || o != m.Owner(i, k+int32(m.Pc)) {
					t.Fatal("not block-cyclic")
				}
			}
		}
	}
	// Square grid for perfect squares.
	if m := NewMap2D(16); m.Pr != 4 || m.Pc != 4 {
		t.Fatalf("16 → %dx%d, want 4x4", m.Pr, m.Pc)
	}
	if m := NewMap2D(0); m.P() != 1 {
		t.Fatal("p=0 should clamp to 1")
	}
}

func TestMap2DBalance(t *testing.T) {
	// On a real structure, block ownership should spread across all
	// processes.
	m := gen.Laplace3D(5, 5, 5)
	st, _ := analyze(t, m, ordering.NestedDissection, Options{MaxSupernodeSize: 8})
	for _, p := range []int{2, 4, 8} {
		mp := NewMap2D(p)
		count := make([]int, p)
		for bi := range st.Blocks {
			count[mp.OwnerOf(&st.Blocks[bi])]++
		}
		for r, c := range count {
			if c == 0 {
				t.Fatalf("p=%d: rank %d owns no blocks (%v)", p, r, count)
			}
		}
	}
}

func TestAnalyzeEmptyMatrix(t *testing.T) {
	if _, _, err := Analyze(&matrix.SparseSym{N: 0, ColPtr: []int32{0}}, ordering.Natural, Options{}); err == nil {
		t.Fatal("expected ErrEmptyMatrix")
	}
}

// Property: for random matrices, Analyze produces a valid structure whose
// task graph satisfies the closure invariant (no panic) under varied
// options.
func TestAnalyzeProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw, capRaw uint8, relax bool) bool {
		n := int(nRaw%30) + 1
		m := gen.RandomSPD(n, float64(dRaw%10)/12, seed)
		opt := Options{MaxSupernodeSize: int(capRaw % 9)} // 0 = uncapped
		if relax {
			opt.RelaxRatio = 0.4
		}
		st, _, err := Analyze(m, ordering.MinDegree, opt)
		if err != nil || st.Validate() != nil {
			return false
		}
		tg := BuildTaskGraph(st)
		return tg.NumTasks() >= st.NumSupernodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The production column counts (the skeleton algorithm in etree) must match
// the in-package elimination-based reference on every structure regime.
func TestColCountsSkeletonVsElimination(t *testing.T) {
	for name, m := range testMats() {
		st, pm := analyze(t, m, ordering.NestedDissection, DefaultOptions())
		ref := colCounts(pm, st.Tree)
		for j := 0; j < pm.N; j++ {
			if st.ColCount[j] != ref[j] {
				t.Fatalf("%s: ColCount[%d] = %d, reference %d", name, j, st.ColCount[j], ref[j])
			}
		}
	}
}
