package symbolic

import (
	"testing"

	"sympack/internal/gen"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
)

// arrowheadMatrix builds an SPD arrowhead with the dense row last: columns
// 0..n-2 couple only to the final row, so natural-ordered elimination
// produces no fill, one off-diagonal block per leading column, and every
// update is a SYRK onto the final diagonal block.
func arrowheadMatrix(t *testing.T, n int) *matrix.SparseSym {
	t.Helper()
	c := matrix.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, float64(n)+1)
	}
	for i := 0; i < n-1; i++ {
		c.Add(n-1, i, -1)
	}
	s, err := c.ToSym()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tridiagMatrix builds the SPD second-difference matrix: eliminating column
// j updates only entry (j+1, j+1), again fill-free under natural ordering.
func tridiagMatrix(t *testing.T, n int) *matrix.SparseSym {
	t.Helper()
	c := matrix.NewCOO(n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4)
	}
	for i := 0; i < n-1; i++ {
		c.Add(i+1, i, -1)
	}
	s, err := c.ToSym()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTaskGraphCountsPerFormulation pins the task census of the three
// formulations on hand-checked structures. All matrices are analyzed with
// natural ordering and scalar supernodes (MaxSupernodeSize=1), so the block
// partition is exactly the scalar structure of L and the counts below can
// be verified on paper:
//
//   - arrowhead n=5: no fill; columns 0..3 each carry one off-diagonal
//     block into row 4, so 5+4 = 9 blocks and one SYRK update per leading
//     column (4 updates, all targeting the last diagonal block).
//   - tridiagonal n=6: no fill; 5 off-diagonal blocks, 5 SYRK updates,
//     each targeting the next diagonal block.
//   - 3×3 grid Laplacian: fill-in appears (e.g. eliminating vertex 0
//     couples its neighbors 1 and 3); the scalar structure of L has 29
//     nonzeros → 29 blocks, with 37 ordered source-pairs → 37 updates.
//
// Every formulation runs the same D/F/U tasks (blocks + updates); the
// delivering formulations add one apply task per update, so their count
// exceeds fan-out's by exactly len(Updates).
func TestTaskGraphCountsPerFormulation(t *testing.T) {
	cases := []struct {
		name    string
		a       *matrix.SparseSym
		snodes  int
		blocks  int
		updates int
		syrk    int
	}{
		{"arrowhead5", arrowheadMatrix(t, 5), 5, 9, 4, 4},
		{"tridiag6", tridiagMatrix(t, 6), 6, 11, 5, 5},
		{"grid3x3", gen.Laplace2D(3, 3), 9, 29, 37, 20},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, _, err := Analyze(tc.a, ordering.Natural, Options{MaxSupernodeSize: 1})
			if err != nil {
				t.Fatal(err)
			}
			tg := BuildTaskGraph(st)

			if got := len(st.Snodes); got != tc.snodes {
				t.Fatalf("snodes = %d, want %d", got, tc.snodes)
			}
			if got := len(st.Blocks); got != tc.blocks {
				t.Fatalf("blocks = %d, want %d", got, tc.blocks)
			}
			if got := len(tg.Updates); got != tc.updates {
				t.Fatalf("updates = %d, want %d", got, tc.updates)
			}
			syrk := 0
			for i := range tg.Updates {
				if tg.Updates[i].IsSyrk() {
					syrk++
				}
			}
			if syrk != tc.syrk {
				t.Fatalf("syrk updates = %d, want %d", syrk, tc.syrk)
			}
			if got, want := tg.NumTasks(), tc.blocks+tc.updates; got != want {
				t.Fatalf("NumTasks = %d, want %d", got, want)
			}

			// Per-formulation executed-task counts: fan-out runs one task
			// per block and update; fan-in and fan-both add one apply task
			// per delivered contribution.
			for _, form := range Formulations() {
				want := tc.blocks + tc.updates
				if form.DeliversContributions() {
					want += tc.updates
				}
				if got := form.TaskCount(tg); got != want {
					t.Fatalf("%s: TaskCount = %d, want %d", form, got, want)
				}
			}

			// Dependency bookkeeping: InUpdates is the per-target incoming
			// update census, so it must sum to the update count.
			var inSum int
			for _, v := range tg.InUpdates {
				inSum += int(v)
			}
			if inSum != tc.updates {
				t.Fatalf("sum(InUpdates) = %d, want %d", inSum, tc.updates)
			}
		})
	}
}

// TestTaskGraphComputeBlockRouting pins where each formulation executes an
// update: fan-out at the target's owner, fan-in at the owner of B_{i,j}
// (the left operand), fan-both at the owner of B_{k,j} (the transposed
// operand) — and for SYRK updates the two source routes coincide.
func TestTaskGraphComputeBlockRouting(t *testing.T) {
	st, _, err := Analyze(gen.Laplace2D(3, 3), ordering.Natural, Options{MaxSupernodeSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	tg := BuildTaskGraph(st)
	var sawGemm bool
	for i := range tg.Updates {
		u := &tg.Updates[i]
		if got := FanOut.ComputeBlock(u); got != u.Target {
			t.Fatalf("update %d: fan-out computes at block %d, want target %d", i, got, u.Target)
		}
		if got := FanIn.ComputeBlock(u); got != u.BlkB {
			t.Fatalf("update %d: fan-in computes at block %d, want BlkB %d", i, got, u.BlkB)
		}
		if got := FanBoth.ComputeBlock(u); got != u.BlkA {
			t.Fatalf("update %d: fan-both computes at block %d, want BlkA %d", i, got, u.BlkA)
		}
		if u.IsSyrk() && FanIn.ComputeBlock(u) != FanBoth.ComputeBlock(u) {
			t.Fatalf("update %d: SYRK source routes diverge", i)
		}
		if !u.IsSyrk() {
			sawGemm = true
			if u.BlkA == u.Target || u.BlkB == u.Target {
				t.Fatalf("update %d: GEMM source aliases its target", i)
			}
		}
	}
	if !sawGemm {
		t.Fatal("grid problem produced no GEMM updates; routing untested")
	}
	if FanOut.DeliversContributions() {
		t.Fatal("fan-out must apply in place, not deliver contributions")
	}
	for _, form := range []Formulation{FanIn, FanBoth} {
		if !form.DeliversContributions() {
			t.Fatalf("%s must deliver contributions", form)
		}
	}
}

// TestTaskGraphUpdatesBySource checks the fan-out index: every update is
// listed under each of its distinct source blocks exactly once, and under
// nothing else.
func TestTaskGraphUpdatesBySource(t *testing.T) {
	for _, a := range []*matrix.SparseSym{arrowheadMatrix(t, 5), gen.Laplace2D(3, 3)} {
		st, _, err := Analyze(a, ordering.Natural, Options{MaxSupernodeSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		tg := BuildTaskGraph(st)
		refs := make(map[int32]int, len(tg.Updates))
		for b := range tg.UpdatesBySource {
			for _, ui := range tg.UpdatesBySource[b] {
				u := &tg.Updates[ui]
				if int32(b) != u.BlkA && int32(b) != u.BlkB {
					t.Fatalf("update %d listed under non-source block %d", ui, b)
				}
				refs[ui]++
			}
		}
		for ui := range tg.Updates {
			want := 2
			if tg.Updates[ui].IsSyrk() {
				want = 1
			}
			if refs[int32(ui)] != want {
				t.Fatalf("update %d listed %d times, want %d", ui, refs[int32(ui)], want)
			}
		}
	}
}
