package symbolic

// This file derives the fan-out task graph of paper §3.2 from the block
// partition. Three task kinds operate on single blocks:
//
//	D_k       — POTRF of the diagonal block of supernode k
//	F_{i,k}   — TRSM of off-diagonal block B_{i,k} against L_{k,k}
//	U_{i,j,k} — update of B_{i,k} by blocks B_{i,j} and B_{k,j} of an
//	            earlier supernode j (SYRK when i == k, GEMM otherwise)
//
// with the dependency rules of the paper: D_k waits for all U_{k,·,k};
// F_{i,k} waits for D_k and all U_{i,·,k}; U_{i,j,k} waits for F_{i,j} and
// F_{k,j} (one task when the two source blocks coincide).

// Update describes one U_{i,j,k} task. BlkA is the global index of B_{k,j}
// (the transposed operand whose rows select the target's columns) and BlkB
// that of B_{i,j} (the left operand, i ≥ k); Target is B_{i,k}.
type Update struct {
	SrcSn  int32 // j
	BlkA   int32 // B_{k,j}
	BlkB   int32 // B_{i,j}
	Target int32 // B_{i,k}
}

// IsSyrk reports whether the update is a symmetric rank-k update onto a
// diagonal block (the two source blocks coincide).
func (u *Update) IsSyrk() bool { return u.BlkA == u.BlkB }

// TaskGraph materializes every update task plus per-block dependency
// counts, shared by the real runtime (internal/core) and the performance
// model (internal/des).
type TaskGraph struct {
	St      *Structure
	Updates []Update

	// UpdatesBySource[b] lists indices into Updates whose BlkA or BlkB is
	// block b (an off-diagonal factorized block). Used to fan a completed
	// F task out to its consumers. An update with BlkA == BlkB appears
	// once.
	UpdatesBySource [][]int32

	// InUpdates[b] is the number of update tasks targeting block b — the
	// initial dependency count of D (for diagonal blocks) and of F beyond
	// its D dependency (for off-diagonal blocks).
	InUpdates []int32
}

// BuildTaskGraph enumerates all update tasks: for every supernode j and
// every ordered pair of its off-diagonal blocks (B_{k,j}, B_{i,j}) with
// i ≥ k, emit U_{i,j,k}. The target B_{i,k} exists by the fill closure of
// the supernodal structure (see buildSupernodeRows).
func BuildTaskGraph(st *Structure) *TaskGraph {
	tg := &TaskGraph{
		St:              st,
		UpdatesBySource: make([][]int32, len(st.Blocks)),
		InUpdates:       make([]int32, len(st.Blocks)),
	}
	for j := range st.Snodes {
		blks := st.SnodeBlocks(int32(j))[1:] // off-diagonal blocks only
		for x := range blks {
			for y := x; y < len(blks); y++ {
				a, b := &blks[x], &blks[y]
				target := st.FindBlock(b.RowSn, a.RowSn)
				if target < 0 {
					if st.Incomplete {
						// IC(k) dropped the target's fill: the contribution
						// is discarded, the defining move of an incomplete
						// factorization.
						continue
					}
					// Structure closure guarantees existence; reaching
					// here means a symbolic bug, better loud than wrong.
					panic("symbolic: missing update target block")
				}
				ui := int32(len(tg.Updates))
				tg.Updates = append(tg.Updates, Update{
					SrcSn: int32(j), BlkA: a.ID, BlkB: b.ID, Target: target,
				})
				tg.UpdatesBySource[a.ID] = append(tg.UpdatesBySource[a.ID], ui)
				if b.ID != a.ID {
					tg.UpdatesBySource[b.ID] = append(tg.UpdatesBySource[b.ID], ui)
				}
				tg.InUpdates[target]++
			}
		}
	}
	return tg
}

// NumTasks returns the total task count: one D per supernode, one F per
// off-diagonal block, one U per update.
func (tg *TaskGraph) NumTasks() int {
	nOff := len(tg.St.Blocks) - len(tg.St.Snodes)
	return len(tg.St.Snodes) + nOff + len(tg.Updates)
}

// BlockMap assigns blocks to processes. The paper's map(i,j) function
// (§3.3) is a 2D block-cyclic distribution; a 1D column distribution is
// provided for comparison (the paper argues 1D creates serial bottlenecks).
type BlockMap interface {
	// Owner returns the process owning block B_{i,k}.
	Owner(i, k int32) int
	// P returns the process count.
	P() int
}

// OwnerOfBlock maps a block value through any BlockMap.
func OwnerOfBlock(m BlockMap, b *Block) int { return m.Owner(b.RowSn, b.Snode) }

// Map2D is the 2D block-cyclic distribution of paper §3.3: block B_{i,k}
// lives on process (i mod Pr, k mod Pc) of a Pr×Pc process grid.
type Map2D struct {
	Pr, Pc int
}

// NewMap2D builds the most-square grid for p processes (Pr·Pc == p with
// Pr ≤ Pc, favoring squareness, as 2D block-cyclic distributions do).
func NewMap2D(p int) Map2D {
	if p < 1 {
		p = 1
	}
	pr := 1
	for d := 1; d*d <= p; d++ {
		if p%d == 0 {
			pr = d
		}
	}
	return Map2D{Pr: pr, Pc: p / pr}
}

// P returns the process count.
func (m Map2D) P() int { return m.Pr * m.Pc }

// Owner returns the process owning block B_{i,k}.
func (m Map2D) Owner(i, k int32) int {
	return int(i)%m.Pr*m.Pc + int(k)%m.Pc
}

// OwnerOf returns the process owning a block value.
func (m Map2D) OwnerOf(b *Block) int { return m.Owner(b.RowSn, b.Snode) }

// Map1D is the 1D column-cyclic distribution: every block of supernode k
// lives on process k mod P — the layout whose serial bottlenecks the 2D
// map exists to avoid (§3.3).
type Map1D struct {
	NP int
}

// Owner returns the process owning block B_{i,k} (column-determined).
func (m Map1D) Owner(_, k int32) int { return int(k) % m.NP }

// P returns the process count.
func (m Map1D) P() int { return m.NP }
