package symbolic

import (
	"testing"

	"sympack/internal/gen"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
)

// colPatterns reconstructs the per-column off-diagonal pattern the blocked
// structure actually stores: for column c in supernode [fc..lc] with
// off-diagonal rows R, pattern(c) = {c+1..lc} ∪ R.
func colPatterns(st *Structure) []map[int32]bool {
	pats := make([]map[int32]bool, st.N)
	for k := range st.Snodes {
		sn := &st.Snodes[k]
		off := sn.Rows[sn.NCols():]
		for c := sn.FirstCol; c <= sn.LastCol; c++ {
			p := map[int32]bool{}
			for r := c + 1; r <= sn.LastCol; r++ {
				p[r] = true
			}
			for _, r := range off {
				p[r] = true
			}
			pats[c] = p
		}
	}
	return pats
}

func patNnz(pats []map[int32]bool) int {
	n := 0
	for _, p := range pats {
		n += len(p) + 1
	}
	return n
}

func analyzeIC(t *testing.T, m *matrix.SparseSym, level int, drop float64) (*Structure, *matrix.SparseSym) {
	t.Helper()
	st, pm, err := AnalyzeIC(m, ordering.MinDegree, DefaultOptions(), ICOptions{Level: level, DropTol: drop})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Incomplete {
		t.Fatal("AnalyzeIC structure not marked Incomplete")
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	return st, pm
}

// TestICZeroLevelMatchesMatrixPattern: IC(0) keeps exactly the pattern of
// the (permuted) matrix — the strict supernode rule must not smuggle in
// padding entries.
func TestICZeroLevelMatchesMatrixPattern(t *testing.T) {
	for name, m := range testMats() {
		t.Run(name, func(t *testing.T) {
			st, pm := analyzeIC(t, m, 0, 0)
			pats := colPatterns(st)
			for j := 0; j < pm.N; j++ {
				want := map[int32]bool{}
				for p := pm.ColPtr[j]; p < pm.ColPtr[j+1]; p++ {
					if r := pm.RowInd[p]; int(r) != j {
						want[r] = true
					}
				}
				if len(want) != len(pats[j]) {
					t.Fatalf("col %d: IC(0) pattern has %d rows, matrix has %d", j, len(pats[j]), len(want))
				}
				for r := range want {
					if !pats[j][r] {
						t.Fatalf("col %d: matrix row %d missing from IC(0) pattern", j, r)
					}
				}
			}
		})
	}
}

// TestICLevelMonotone: raising k only adds pattern entries.
func TestICLevelMonotone(t *testing.T) {
	m := gen.Laplace2D(9, 9)
	prev := -1
	for k := 0; k <= 4; k++ {
		st, _ := analyzeIC(t, m, k, 0)
		nnz := patNnz(colPatterns(st))
		if nnz < prev {
			t.Fatalf("IC(%d) pattern nnz %d < IC(%d) nnz %d", k, nnz, k-1, prev)
		}
		prev = nnz
	}
}

// TestICLargeLevelIsComplete: with k ≥ n the level rule admits every fill
// entry, so the pattern must equal the complete factor's.
func TestICLargeLevelIsComplete(t *testing.T) {
	for _, m := range []*matrix.SparseSym{
		gen.Laplace2D(8, 8),
		gen.RandomSPD(40, 0.1, 4),
	} {
		stC, pmC, err := Analyze(m, ordering.MinDegree, Options{})
		if err != nil {
			t.Fatal(err)
		}
		stI, pmI, err := AnalyzeIC(m, ordering.MinDegree, Options{}, ICOptions{Level: m.N})
		if err != nil {
			t.Fatal(err)
		}
		if pmC.Nnz() != pmI.Nnz() {
			t.Fatalf("permuted matrices differ: %d vs %d nnz", pmC.Nnz(), pmI.Nnz())
		}
		pc, pi := colPatterns(stC), colPatterns(stI)
		for j := range pc {
			if len(pc[j]) != len(pi[j]) {
				t.Fatalf("col %d: complete pattern %d rows, IC(n) %d rows", j, len(pc[j]), len(pi[j]))
			}
			for r := range pc[j] {
				if !pi[j][r] {
					t.Fatalf("col %d: complete row %d missing from IC(n)", j, r)
				}
			}
		}
	}
}

// TestICPatternSubsetOfComplete: every IC(k) pattern entry is a true fill
// entry of the complete factor (levels only remove, never invent).
func TestICPatternSubsetOfComplete(t *testing.T) {
	m := gen.RandomSPD(50, 0.15, 9)
	st, pm := analyzeIC(t, m, 1, 0)
	brute := bruteLStruct(pm)
	for j, p := range colPatterns(st) {
		for r := range p {
			if !brute[j][r] {
				t.Fatalf("col %d: IC(1) invented entry %d absent from complete L", j, r)
			}
		}
	}
}

// TestICDropTolFilters: the threshold pre-filter removes small couplings
// from the returned matrix, and everything returned lies in the structure.
func TestICDropTolFilters(t *testing.T) {
	m := gen.RandomSPD(40, 0.2, 11)
	_, pmAll := analyzeIC(t, m, 0, 0)
	st, pm := analyzeIC(t, m, 0, 0.05)
	if pm.Nnz() >= pmAll.Nnz() {
		t.Fatalf("DropTol removed nothing: %d vs %d nnz", pm.Nnz(), pmAll.Nnz())
	}
	pats := colPatterns(st)
	for j := 0; j < pm.N; j++ {
		for p := pm.ColPtr[j]; p < pm.ColPtr[j+1]; p++ {
			if r := pm.RowInd[p]; int(r) != j && !pats[j][r] {
				t.Fatalf("filtered matrix entry (%d,%d) outside IC structure", r, j)
			}
		}
		found := false
		for p := pm.ColPtr[j]; p < pm.ColPtr[j+1]; p++ {
			if int(pm.RowInd[p]) == j {
				found = true
			}
		}
		if !found {
			t.Fatalf("DropTol removed diagonal of column %d", j)
		}
	}
}

// TestICTaskGraphSkipsDroppedTargets: building the task graph on an
// incomplete structure must not panic, and must drop some block pairs
// (targets removed by the level rule) rather than emitting every pair the
// way the complete graph does.
func TestICTaskGraphSkipsDroppedTargets(t *testing.T) {
	m := gen.Laplace2D(10, 10)
	stI, _ := analyzeIC(t, m, 1, 0)
	tgI := BuildTaskGraph(stI)
	pairs := 0
	for k := range stI.Snodes {
		b := len(stI.SnodeBlocks(int32(k))) - 1
		pairs += b * (b + 1) / 2
	}
	if len(tgI.Updates) >= pairs {
		t.Fatalf("IC(1) task graph kept all %d block pairs; expected dropped targets", pairs)
	}
	// Every surviving update's target must exist and lie in the right place.
	for _, u := range tgI.Updates {
		tb := &stI.Blocks[u.Target]
		a, b := &stI.Blocks[u.BlkA], &stI.Blocks[u.BlkB]
		if tb.Snode != a.RowSn || tb.RowSn != b.RowSn {
			t.Fatalf("update target B[%d,%d] inconsistent with sources", tb.RowSn, tb.Snode)
		}
	}
}
