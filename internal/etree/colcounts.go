package etree

import "sympack/internal/matrix"

// ColCounts computes the nonzero count of every column of the Cholesky
// factor L (diagonal included) in near-linear time O(nnz·α(n)), using the
// skeleton-matrix algorithm of Gilbert, Ng and Peyton as realized in
// CSparse's cs_counts: row subtrees are detected leaf-by-leaf with a
// path-compressed ancestor union-find, so the factor's structure is never
// materialized. `post` must be a postorder of the tree (t.Postorder()).
func (t *Tree) ColCounts(a *matrix.SparseSym, post []int32) []int32 {
	n := t.N()
	parent := t.Parent
	delta := make([]int32, n)
	first := make([]int32, n)
	maxfirst := make([]int32, n)
	prevleaf := make([]int32, n)
	ancestor := make([]int32, n)
	for i := 0; i < n; i++ {
		first[i] = -1
		maxfirst[i] = -1
		prevleaf[i] = -1
		ancestor[i] = int32(i)
	}
	// Pass 1: first descendants and leaf deltas.
	for k := 0; k < n; k++ {
		j := post[k]
		if first[j] == -1 {
			delta[j] = 1 // j is a leaf of the etree
		}
		for ; j != -1 && first[j] == -1; j = parent[j] {
			first[j] = int32(k)
		}
	}
	// Pass 2: count skeleton entries via row-subtree leaves. Column j of
	// the lower-triangle CSC holds exactly the rows i ≥ j with A[i,j] ≠ 0,
	// the edge set cs_counts walks.
	for k := 0; k < n; k++ {
		j := post[k]
		if parent[j] != -1 {
			delta[parent[j]]--
		}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := a.RowInd[p]
			q, jleaf := leaf(i, j, first, maxfirst, prevleaf, ancestor)
			if jleaf >= 1 {
				delta[j]++
			}
			if jleaf == 2 {
				delta[q]--
			}
		}
		if parent[j] != -1 {
			ancestor[j] = parent[j]
		}
	}
	// Pass 3: accumulate subtree counts up the tree. The parent array is
	// not necessarily monotone, so walk in postorder.
	counts := delta
	for k := 0; k < n; k++ {
		j := post[k]
		if parent[j] != -1 {
			counts[parent[j]] += counts[j]
		}
	}
	return counts
}

// leaf implements cs_leaf: it decides whether j is a new leaf of row i's
// row subtree. jleaf is 0 when (i,j) is not a skeleton entry, 1 for the
// first leaf of row i, 2 for subsequent leaves — in which case q is the
// least common ancestor of j and the previous leaf, whose count the caller
// decrements to cancel the overlap.
func leaf(i, j int32, first, maxfirst, prevleaf, ancestor []int32) (q int32, jleaf int) {
	if i <= j || first[j] <= maxfirst[i] {
		return -1, 0
	}
	maxfirst[i] = first[j]
	jprev := prevleaf[i]
	prevleaf[i] = j
	if jprev == -1 {
		return i, 1
	}
	// Find the root of jprev's partial path (the LCA), compressing.
	q = jprev
	for q != ancestor[q] {
		q = ancestor[q]
	}
	for s := jprev; s != q; {
		next := ancestor[s]
		ancestor[s] = q
		s = next
	}
	return q, 2
}
