// Package etree computes and manipulates elimination trees, the central
// symbolic tool of sparse Cholesky factorization (paper §2.2, Liu [18]).
// The elimination tree of the factor L has an edge (j → parent) where
// parent is the row of the first off-diagonal nonzero in column j of L;
// it encodes all column dependencies of the factorization.
package etree

import (
	"errors"

	"sympack/internal/matrix"
)

// ErrNotPostordered is returned by functions requiring a postordered tree.
var ErrNotPostordered = errors.New("etree: tree is not postordered")

// Tree holds an elimination tree as a parent array: Parent[j] is the parent
// column of j, or -1 for roots.
type Tree struct {
	Parent []int32
}

// N returns the number of vertices.
func (t *Tree) N() int { return len(t.Parent) }

// Compute builds the elimination tree of a symmetric matrix using Liu's
// algorithm with path compression, O(nnz·α(n)).
func Compute(a *matrix.SparseSym) *Tree {
	n := a.N
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for i := range parent {
		parent[i] = -1
		ancestor[i] = -1
	}
	// Liu's algorithm requires visiting rows in ascending order, with all
	// below-diagonal entries of row i available together. Our storage is
	// lower-triangle CSC (entries of row i scattered over columns j < i),
	// so first bucket entries by row.
	rowPtr := make([]int32, n+1)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if i := a.RowInd[p]; int(i) != j {
				rowPtr[i+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	rowCols := make([]int32, rowPtr[n])
	pos := append([]int32(nil), rowPtr[:n]...)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if i := a.RowInd[p]; int(i) != j {
				rowCols[pos[i]] = int32(j)
				pos[i]++
			}
		}
	}
	for i := int32(0); int(i) < n; i++ {
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			// Walk the compressed ancestor path from j toward i.
			k := rowCols[p]
			for k != -1 && k < i {
				next := ancestor[k]
				ancestor[k] = i
				if next == -1 {
					parent[k] = i
					break
				}
				k = next
			}
		}
	}
	return &Tree{Parent: parent}
}

// Children returns, for each vertex, the list of its children in ascending
// order (row indices ascend because columns are visited in order).
func (t *Tree) Children() [][]int32 {
	ch := make([][]int32, t.N())
	for j, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], int32(j))
		}
	}
	return ch
}

// Roots returns the tree roots (one per connected component).
func (t *Tree) Roots() []int32 {
	var r []int32
	for j, p := range t.Parent {
		if p == -1 {
			r = append(r, int32(j))
		}
	}
	return r
}

// Postorder returns a postorder permutation (new-to-old): vertices are
// renumbered so every child precedes its parent and each subtree is a
// contiguous index range. Children are visited in ascending original order,
// which keeps the permutation stable for already-postordered trees.
func (t *Tree) Postorder() []int32 {
	n := t.N()
	ch := t.Children()
	post := make([]int32, 0, n)
	// Iterative DFS with per-vertex child cursor to avoid recursion depth
	// limits on path graphs.
	cursor := make([]int32, n)
	stack := make([]int32, 0, 64)
	for j := 0; j < n; j++ {
		if t.Parent[j] != -1 {
			continue
		}
		stack = append(stack, int32(j))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if int(cursor[v]) < len(ch[v]) {
				c := ch[v][cursor[v]]
				cursor[v]++
				stack = append(stack, c)
				continue
			}
			post = append(post, v)
			stack = stack[:len(stack)-1]
		}
	}
	return post
}

// IsPostordered reports whether parent[j] > j for all non-roots, the
// property guaranteed after permuting a matrix by Postorder().
func (t *Tree) IsPostordered() bool {
	for j, p := range t.Parent {
		if p != -1 && int(p) <= j {
			return false
		}
	}
	return true
}

// Permute relabels the tree under a new-to-old permutation `perm`,
// returning the tree of the permuted matrix. newParent[inv[j]] =
// inv[parent[j]].
func (t *Tree) Permute(perm []int32) *Tree {
	n := t.N()
	inv := make([]int32, n)
	for k, old := range perm {
		inv[old] = int32(k)
	}
	np := make([]int32, n)
	for j := 0; j < n; j++ {
		p := t.Parent[j]
		if p == -1 {
			np[inv[j]] = -1
		} else {
			np[inv[j]] = inv[p]
		}
	}
	return &Tree{Parent: np}
}

// Level returns each vertex's depth from its root (root = 0).
func (t *Tree) Level() []int32 {
	n := t.N()
	lvl := make([]int32, n)
	for i := range lvl {
		lvl[i] = -1
	}
	for v := 0; v < n; v++ {
		// Iterative path walk to avoid deep recursion on path-shaped
		// trees: collect unlabeled ancestors, then assign downward.
		if lvl[v] >= 0 {
			continue
		}
		path := []int32{}
		u := int32(v)
		for u != -1 && lvl[u] < 0 {
			path = append(path, u)
			u = t.Parent[u]
		}
		base := int32(-1)
		if u != -1 {
			base = lvl[u]
		}
		for i := len(path) - 1; i >= 0; i-- {
			base++
			lvl[path[i]] = base
		}
	}
	return lvl
}

// Height returns 1 + the maximum level (the length of the longest
// root-to-leaf path), a proxy for the critical path of the factorization.
func (t *Tree) Height() int {
	h := int32(0)
	for _, l := range t.Level() {
		if l > h {
			h = l
		}
	}
	return int(h + 1)
}

// FirstDescendants returns, for a postordered tree, the smallest vertex in
// each subtree. Returns ErrNotPostordered when the precondition fails.
func (t *Tree) FirstDescendants() ([]int32, error) {
	if !t.IsPostordered() {
		return nil, ErrNotPostordered
	}
	n := t.N()
	fd := make([]int32, n)
	for j := 0; j < n; j++ {
		fd[j] = int32(j)
	}
	for j := 0; j < n; j++ {
		p := t.Parent[j]
		if p != -1 && fd[j] < fd[p] {
			fd[p] = fd[j]
		}
	}
	return fd, nil
}
