package etree

import (
	"testing"
	"testing/quick"

	"sympack/internal/gen"
	"sympack/internal/matrix"
)

// bruteParent computes the elimination tree definition directly: simulate
// symbolic elimination; parent(j) = min row index > j in column j of L.
func bruteParent(a *matrix.SparseSym) []int32 {
	n := a.N
	rows := make([]map[int32]bool, n)
	for j := 0; j < n; j++ {
		rows[j] = map[int32]bool{}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			if int(a.RowInd[p]) != j {
				rows[j][a.RowInd[p]] = true
			}
		}
	}
	parent := make([]int32, n)
	for j := 0; j < n; j++ {
		parent[j] = -1
		for r := range rows[j] {
			if parent[j] == -1 || r < parent[j] {
				parent[j] = r
			}
		}
		if parent[j] >= 0 {
			for r := range rows[j] {
				if r != parent[j] {
					rows[parent[j]][r] = true
				}
			}
		}
	}
	return parent
}

func mats() map[string]*matrix.SparseSym {
	return map[string]*matrix.SparseSym{
		"laplace2d": gen.Laplace2D(7, 5),
		"laplace3d": gen.Laplace3D(3, 3, 3),
		"flan":      gen.Flan3D(2, 2, 2, 1),
		"thermal":   gen.Thermal2D(10, 10, 2, 3),
		"random":    gen.RandomSPD(30, 0.15, 4),
		"diagonal":  gen.RandomSPD(8, 0, 5),
		"single":    gen.Laplace2D(1, 1),
	}
}

func TestComputeMatchesBruteForce(t *testing.T) {
	for name, m := range mats() {
		got := Compute(m).Parent
		want := bruteParent(m)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: parent[%d] = %d, want %d", name, j, got[j], want[j])
			}
		}
	}
}

func TestPostorderProperties(t *testing.T) {
	for name, m := range mats() {
		tr := Compute(m)
		post := tr.Postorder()
		// post is a permutation.
		seen := make([]bool, m.N)
		for _, v := range post {
			if seen[v] {
				t.Fatalf("%s: duplicate %d in postorder", name, v)
			}
			seen[v] = true
		}
		// Every child appears before its parent.
		position := make([]int32, m.N)
		for k, v := range post {
			position[v] = int32(k)
		}
		for j, p := range tr.Parent {
			if p != -1 && position[j] >= position[p] {
				t.Fatalf("%s: vertex %d not before parent %d", name, j, p)
			}
		}
		// The permuted tree is postordered, and so is the etree of the
		// permuted matrix.
		pt := tr.Permute(post)
		if !pt.IsPostordered() {
			t.Fatalf("%s: permuted tree not postordered", name)
		}
		pm, err := m.Permute(post)
		if err != nil {
			t.Fatal(err)
		}
		if !Compute(pm).IsPostordered() {
			t.Fatalf("%s: etree of postorder-permuted matrix not postordered", name)
		}
	}
}

func TestPermuteConsistentWithMatrixPermute(t *testing.T) {
	// The etree of PAPᵀ must equal the permuted etree of A when P is a
	// topological (postorder) permutation.
	m := gen.Laplace2D(6, 6)
	tr := Compute(m)
	post := tr.Postorder()
	pm, err := m.Permute(post)
	if err != nil {
		t.Fatal(err)
	}
	want := Compute(pm).Parent
	got := tr.Permute(post).Parent
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("parent[%d]: permuted-tree %d vs tree-of-permuted %d", j, got[j], want[j])
		}
	}
}

func TestChildrenAndRoots(t *testing.T) {
	tr := &Tree{Parent: []int32{2, 2, 4, 4, -1, -1}}
	ch := tr.Children()
	if len(ch[2]) != 2 || ch[2][0] != 0 || ch[2][1] != 1 {
		t.Fatalf("children(2) = %v", ch[2])
	}
	if len(ch[4]) != 2 || ch[4][0] != 2 || ch[4][1] != 3 {
		t.Fatalf("children(4) = %v", ch[4])
	}
	roots := tr.Roots()
	if len(roots) != 2 || roots[0] != 4 || roots[1] != 5 {
		t.Fatalf("roots = %v", roots)
	}
}

func TestLevelAndHeight(t *testing.T) {
	tr := &Tree{Parent: []int32{1, 2, -1, 2}}
	lvl := tr.Level()
	want := []int32{2, 1, 0, 1}
	for i := range want {
		if lvl[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, lvl[i], want[i])
		}
	}
	if tr.Height() != 3 {
		t.Fatalf("height = %d, want 3", tr.Height())
	}
}

func TestLevelDeepPath(t *testing.T) {
	// A path of 50k vertices must not blow the stack.
	n := 50000
	parent := make([]int32, n)
	for i := 0; i < n-1; i++ {
		parent[i] = int32(i + 1)
	}
	parent[n-1] = -1
	tr := &Tree{Parent: parent}
	lvl := tr.Level()
	if lvl[0] != int32(n-1) || lvl[n-1] != 0 {
		t.Fatalf("path levels wrong: %d %d", lvl[0], lvl[n-1])
	}
	post := tr.Postorder()
	if len(post) != n || post[0] != 0 {
		t.Fatal("path postorder wrong")
	}
}

func TestFirstDescendants(t *testing.T) {
	tr := &Tree{Parent: []int32{2, 2, 4, 4, -1}}
	fd, err := tr.FirstDescendants()
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 0, 3, 0}
	for i := range want {
		if fd[i] != want[i] {
			t.Fatalf("fd[%d] = %d, want %d", i, fd[i], want[i])
		}
	}
	bad := &Tree{Parent: []int32{-1, 0}}
	if _, err := bad.FirstDescendants(); err == nil {
		t.Fatal("expected ErrNotPostordered")
	}
}

// Property: for random SPD structures, the computed parent matches the
// brute-force definition and postorder is always a valid topological
// relabeling.
func TestEtreeProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := int(nRaw%25) + 1
		m := gen.RandomSPD(n, float64(dRaw%10)/15, seed)
		tr := Compute(m)
		want := bruteParent(m)
		for j := range want {
			if tr.Parent[j] != want[j] {
				return false
			}
		}
		post := tr.Postorder()
		if len(post) != n {
			return false
		}
		return tr.Permute(post).IsPostordered()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// bruteColCounts counts column nonzeros of L by symbolic elimination.
func bruteColCounts(a *matrix.SparseSym) []int32 {
	n := a.N
	rows := make([]map[int32]bool, n)
	for j := 0; j < n; j++ {
		rows[j] = map[int32]bool{int32(j): true}
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			rows[j][a.RowInd[p]] = true
		}
	}
	counts := make([]int32, n)
	for j := 0; j < n; j++ {
		var parent int32 = -1
		for r := range rows[j] {
			if r > int32(j) && (parent == -1 || r < parent) {
				parent = r
			}
		}
		if parent >= 0 {
			for r := range rows[j] {
				if r > int32(j) {
					rows[parent][r] = true
				}
			}
		}
		counts[j] = int32(len(rows[j]))
	}
	return counts
}

func TestColCountsMatchBruteForce(t *testing.T) {
	for name, m := range mats() {
		tr := Compute(m)
		post := tr.Postorder()
		got := tr.ColCounts(m, post)
		want := bruteColCounts(m)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: count[%d] = %d, want %d", name, j, got[j], want[j])
			}
		}
	}
}

// Property: the skeleton algorithm agrees with brute force on random
// structures, including unordered (non-postordered) labelings.
func TestColCountsProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := int(nRaw%30) + 1
		m := gen.RandomSPD(n, float64(dRaw%10)/12, seed)
		tr := Compute(m)
		got := tr.ColCounts(m, tr.Postorder())
		want := bruteColCounts(m)
		for j := range want {
			if got[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
