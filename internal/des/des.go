// Package des is the strong-scaling engine behind the paper's Figures
// 7–12: it replays the *real* task graph of the *real* symbolic
// factorization through a discrete-event simulation of a multi-node GPU
// machine, producing factorization and solve times for both symPACK's
// fan-out algorithm and the PaStiX-like right-looking baseline.
//
// The two solvers differ exactly where the paper says they differ:
//
//   - symPACK: block-granular tasks, 2D block-cyclic mapping, dynamic
//     list scheduling, one-sided notifications, GDR (native memory kinds)
//     transfers straight into device memory with device-side operand
//     caching, per-op offload thresholds, a lightweight task queue.
//   - baseline: panel tasks (POTRF + whole-panel TRSM on the CPU, as in
//     PaStiX's GEMM-only CUDA support), block-granular update tasks under a
//     1D cyclic column-block mapping, two-sided rendezvous messages,
//     per-operation host-staged device copies without operand caching, and
//     StarPU's heavier per-task runtime overhead.
//
// Absolute seconds come from the machine model (internal/machine); the
// figure *shapes* — who wins, by what factor, where curves flatten or
// degrade — come from the DAG and the mapping, which are real.
package des

import (
	"container/heap"
	"fmt"

	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/simnet"
	"sympack/internal/symbolic"
)

// Solver selects the personality being simulated.
type Solver uint8

const (
	SymPACK Solver = iota
	Baseline
)

func (s Solver) String() string {
	if s == SymPACK {
		return "symPACK"
	}
	return "PaStiX-like"
}

// Config describes one simulated run.
type Config struct {
	Solver       Solver
	Nodes        int
	RanksPerNode int
	GPUsPerNode  int // 0 disables offload
	Machine      machine.Machine
	Thresholds   gpu.Thresholds
	// Formulation selects the task formulation the symPACK personality
	// models (fan-out / fan-in / fan-both): where update flops execute and
	// whether computed contributions travel to the target's owner. Mirrors
	// core.Options.Formulation, so a variant simulates exactly what it
	// runs.
	Formulation symbolic.Formulation
	// Mapping selects the block→process distribution (2D block-cyclic /
	// 1D columns / proportional subtree). Mirrors core.Options.Mapping.
	Mapping symbolic.MappingKind
	// Use1DMap is the legacy spelling of Mapping == Map1DCols, kept for
	// existing ablation callers; it applies only when Mapping is left at
	// the 2D default.
	Use1DMap bool
	// ModelNICContention serializes each node's outbound transfers
	// through its NICs (Perlmutter has four per node) instead of treating
	// the fabric as infinitely parallel. Off by default: the paper's
	// flat-MPI runs rarely saturate the NICs, and the uncontended model
	// is what the calibrated figures use; turn it on to study
	// communication-bound configurations.
	ModelNICContention bool
}

// Ranks returns the total process count.
func (c *Config) Ranks() int { return c.Nodes * c.RanksPerNode }

// blockMap resolves the configured block distribution (honoring the legacy
// Use1DMap spelling).
func (c *Config) blockMap(st *symbolic.Structure) symbolic.BlockMap {
	kind := c.Mapping
	if c.Use1DMap && kind == symbolic.Map2DCyclic {
		kind = symbolic.Map1DCols
	}
	return symbolic.NewBlockMap(kind, c.Ranks(), st)
}

// Result reports the modeled times of one run.
type Result struct {
	Config        Config
	FactorSeconds float64
	SolveSeconds  float64
	Tasks         int
	CommBytes     int64
	GPUTaskShare  float64 // fraction of tasks offloaded
}

// ---------------------------------------------------------- scheduling ----

type edge struct {
	to    int32
	bytes int64
	path  simnet.Path
}

type simTask struct {
	owner  int32
	device int32 // -1 = CPU task
	cost   float64
	indeg  int32
	ready  float64
	prio   float64 // bottom level: longest downstream cost-path
	succ   []edge
}

// computePriorities assigns each task its "bottom level" — the longest
// compute path from the task to any sink — the classic list-scheduling
// priority. Both solver personalities are scheduled with it.
func computePriorities(tasks []simTask) {
	n := len(tasks)
	// Reverse-topological traversal via Kahn on successor counts.
	outdeg := make([]int32, n)
	preds := make([][]int32, n)
	for i := range tasks {
		outdeg[i] = int32(len(tasks[i].succ))
		for _, e := range tasks[i].succ {
			preds[e.to] = append(preds[e.to], int32(i))
		}
	}
	stack := make([]int32, 0, n)
	for i := range tasks {
		if outdeg[i] == 0 {
			stack = append(stack, int32(i))
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		best := 0.0
		for _, e := range tasks[t].succ {
			if p := tasks[e.to].prio; p > best {
				best = p
			}
		}
		tasks[t].prio = tasks[t].cost + best
		for _, p := range preds[t] {
			outdeg[p]--
			if outdeg[p] == 0 {
				stack = append(stack, p)
			}
		}
	}
}

// sched runs event-driven list scheduling of the task set over ranks and
// devices, returning the makespan. Each task starts at
// max(rank available, task ready[, device available]) on its owner;
// completions propagate along edges with the modeled transfer time added
// when the endpoint owners differ.
type sched struct {
	tasks  []simTask
	net    *simnet.Network
	ranks  int
	rpn    int
	rankAt []float64
	devAt  []float64
	// nicAt, when non-nil, holds each node's NIC-availability time
	// (aggregate across its NICs); cross-node sends serialize through it.
	nicAt []float64
	nicBW float64
	// Two-level ready queues per rank: waitQs orders not-yet-ready tasks
	// by ready time; runQs orders currently-runnable tasks by priority
	// (bottom level, descending). When a rank picks work it drains waitQ
	// entries whose ready time has passed into runQ and takes the highest
	// priority — standard list scheduling.
	waitQs  []taskHeap
	runQs   []prioHeap
	cand    candHeap
	candVer []int64 // stale-entry invalidation: only the latest per rank counts
	bytes   int64
}

func newSched(tasks []simTask, net *simnet.Network, ranks, rpn, devices int) *sched {
	computePriorities(tasks)
	s := &sched{
		tasks:   tasks,
		net:     net,
		ranks:   ranks,
		rpn:     rpn,
		rankAt:  make([]float64, ranks),
		devAt:   make([]float64, max(devices, 1)),
		waitQs:  make([]taskHeap, ranks),
		runQs:   make([]prioHeap, ranks),
		candVer: make([]int64, ranks),
	}
	for i := range tasks {
		if tasks[i].indeg == 0 {
			s.enqueue(int32(i))
		}
	}
	return s
}

func (s *sched) enqueue(t int32) {
	owner := s.tasks[t].owner
	heap.Push(&s.waitQs[owner], readyEntry{ready: s.tasks[t].ready, task: t})
	s.pushCand(owner)
}

// drain moves every task whose ready time has passed `now` from the
// rank's wait queue into its priority run queue.
func (s *sched) drain(rank int32, now float64) {
	wq := &s.waitQs[rank]
	for wq.Len() > 0 && (*wq)[0].ready <= now {
		re := heap.Pop(wq).(readyEntry)
		heap.Push(&s.runQs[rank], prioEntry{prio: s.tasks[re.task].prio, task: re.task})
	}
}

// nextStart returns the earliest time the rank could begin a task.
func (s *sched) nextStart(rank int32) (float64, bool) {
	s.drain(rank, s.rankAt[rank])
	if s.runQs[rank].Len() > 0 {
		return s.rankAt[rank], true
	}
	if s.waitQs[rank].Len() > 0 {
		return s.waitQs[rank][0].ready, true
	}
	return 0, false
}

// pushCand (re)registers a rank's earliest possible next start,
// invalidating any earlier candidate entries for the rank.
func (s *sched) pushCand(rank int32) {
	s.candVer[rank]++
	start, ok := s.nextStart(rank)
	if !ok {
		return
	}
	heap.Push(&s.cand, candEntry{start: start, rank: rank, ver: s.candVer[rank]})
}

func (s *sched) run() float64 {
	makespan := 0.0
	for s.cand.Len() > 0 {
		ce := heap.Pop(&s.cand).(candEntry)
		if ce.ver != s.candVer[ce.rank] {
			continue // superseded by a fresher candidate
		}
		start, ok := s.nextStart(ce.rank)
		if !ok {
			continue
		}
		// Everything runnable at the start instant competes on priority.
		s.drain(ce.rank, start)
		if s.runQs[ce.rank].Len() == 0 {
			continue
		}
		pe := heap.Pop(&s.runQs[ce.rank]).(prioEntry)
		t := &s.tasks[pe.task]
		if t.device >= 0 && s.devAt[t.device] > start {
			start = s.devAt[t.device]
		}
		finish := start + t.cost
		s.rankAt[ce.rank] = finish
		if t.device >= 0 {
			s.devAt[t.device] = finish
		}
		if finish > makespan {
			makespan = finish
		}
		for _, e := range t.succ {
			st := &s.tasks[e.to]
			arrive := finish
			if e.bytes > 0 && st.owner != t.owner {
				sameNode := int(st.owner)/s.rpn == int(t.owner)/s.rpn
				sendAt := finish
				if s.nicAt != nil && !sameNode {
					// The message waits for a free NIC slot on the source
					// node, then occupies it for its wire time.
					node := int(t.owner) / s.rpn
					if s.nicAt[node] > sendAt {
						sendAt = s.nicAt[node]
					}
					s.nicAt[node] = sendAt + float64(e.bytes)/s.nicBW
				}
				arrive = sendAt + s.net.Time(e.path, e.bytes, sameNode)
				s.bytes += e.bytes
			}
			if arrive > st.ready {
				st.ready = arrive
			}
			st.indeg--
			if st.indeg == 0 {
				s.enqueue(e.to)
			}
		}
		s.pushCand(ce.rank)
	}
	return makespan
}

type readyEntry struct {
	ready float64
	task  int32
}

type taskHeap []readyEntry

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return h[i].ready < h[j].ready }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(readyEntry)) }
func (h *taskHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type prioEntry struct {
	prio float64
	task int32
}

// prioHeap is a max-heap on bottom-level priority.
type prioHeap []prioEntry

func (h prioHeap) Len() int           { return len(h) }
func (h prioHeap) Less(i, j int) bool { return h[i].prio > h[j].prio }
func (h prioHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)        { *h = append(*h, x.(prioEntry)) }
func (h *prioHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type candEntry struct {
	start float64
	rank  int32
	ver   int64
}

type candHeap []candEntry

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return h[i].start < h[j].start }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(candEntry)) }
func (h *candHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// ------------------------------------------------------------ Simulate ----

// Simulate models a complete factorization + triangular solve run.
func Simulate(st *symbolic.Structure, tg *symbolic.TaskGraph, cfg Config) (Result, error) {
	if cfg.Nodes < 1 || cfg.RanksPerNode < 1 {
		return Result{}, fmt.Errorf("des: bad layout %d nodes × %d rpn", cfg.Nodes, cfg.RanksPerNode)
	}
	net := simnet.New(cfg.Machine)
	var factor, solve float64
	var r Result
	switch cfg.Solver {
	case SymPACK:
		tasks, gpuShare := buildSymPACKFactorDAG(st, tg, &cfg)
		s := newSched(tasks, net, cfg.Ranks(), cfg.RanksPerNode, cfg.Nodes*max(cfg.GPUsPerNode, 1))
		s.enableNICContention(&cfg)
		factor = s.run()
		r.Tasks = len(tasks)
		r.CommBytes = s.bytes
		r.GPUTaskShare = gpuShare
		solve = simulateSolve(st, &cfg, net, false)
	case Baseline:
		tasks, gpuShare := buildBaselineFactorDAG(st, tg, &cfg)
		s := newSched(tasks, net, cfg.Ranks(), cfg.RanksPerNode, cfg.Nodes*max(cfg.GPUsPerNode, 1))
		s.enableNICContention(&cfg)
		factor = s.run()
		r.Tasks = len(tasks)
		r.CommBytes = s.bytes
		r.GPUTaskShare = gpuShare
		solve = simulateSolve(st, &cfg, net, true)
	default:
		return Result{}, fmt.Errorf("des: unknown solver %d", cfg.Solver)
	}
	r.Config = cfg
	r.FactorSeconds = factor
	r.SolveSeconds = solve
	return r, nil
}

// enableNICContention arms the per-node NIC occupancy model.
func (s *sched) enableNICContention(cfg *Config) {
	if !cfg.ModelNICContention {
		return
	}
	nodes := (s.ranks + s.rpn - 1) / s.rpn
	s.nicAt = make([]float64, nodes)
	s.nicBW = cfg.Machine.NICBandwidth * float64(max(cfg.Machine.NICsPerNode, 1))
}

// Per-task runtime overhead of the two software stacks. symPACK's LTQ/RTQ
// scheduling is a couple of queue operations plus a dependency-counter
// decrement; PaStiX rides StarPU, whose dynamic scheduler, data-handle
// management and MPI progress engine cost an order of magnitude more per
// task (StarPU's own documentation puts per-task management in the
// microseconds; with MPI in the loop it is worse). This node-local overhead
// is a major part of why the paper's single-node gap exists at all.
const (
	symPACKTaskOverhead  = 1.0e-6
	baselineTaskOverhead = 12e-6
)

// deviceOf maps a rank to its bound device index (paper §4.2 binding).
func deviceOf(cfg *Config, rank int) int32 {
	if cfg.GPUsPerNode <= 0 {
		return -1
	}
	node := rank / cfg.RanksPerNode
	local := rank % cfg.RanksPerNode
	return int32(node*cfg.GPUsPerNode + local%cfg.GPUsPerNode)
}

// scatterCost models the memory-bound scatter-add of an update result.
func scatterCost(elems int) float64 { return float64(16*elems) / 30e9 }
