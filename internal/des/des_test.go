package des

import (
	"testing"

	"sympack/internal/gen"
	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
	"sympack/internal/symbolic"
)

func analyzed(t *testing.T, m *matrix.SparseSym) (*symbolic.Structure, *symbolic.TaskGraph) {
	t.Helper()
	st, _, err := symbolic.Analyze(m, ordering.NestedDissection, symbolic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return st, symbolic.BuildTaskGraph(st)
}

func simOne(t *testing.T, st *symbolic.Structure, tg *symbolic.TaskGraph, cfg Config) Result {
	t.Helper()
	res, err := Simulate(st, tg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FactorSeconds <= 0 || res.SolveSeconds <= 0 {
		t.Fatalf("non-positive times: %+v", res)
	}
	return res
}

func baseCfg(solver Solver, nodes, rpn int) Config {
	return Config{
		Solver: solver, Nodes: nodes, RanksPerNode: rpn, GPUsPerNode: 4,
		Machine: machine.Perlmutter(), Thresholds: gpu.DefaultThresholds(),
	}
}

func TestSimulateBothSolvers(t *testing.T) {
	st, tg := analyzed(t, gen.Laplace3D(8, 8, 8))
	for _, s := range []Solver{SymPACK, Baseline} {
		for _, nodes := range []int{1, 2, 4} {
			res := simOne(t, st, tg, baseCfg(s, nodes, 4))
			if res.Tasks == 0 {
				t.Fatalf("%v: no tasks", s)
			}
		}
	}
}

// The headline result: symPACK must beat the baseline at every node count
// (paper Figs. 7–12 show this for all three matrices).
func TestSymPACKBeatsBaseline(t *testing.T) {
	mats := map[string]*matrix.SparseSym{
		"flan-like":    gen.Flan3D(6, 6, 6, 1),
		"bone-like":    gen.Bone3D(14, 14, 14, 0.35, 2),
		"thermal-like": gen.Thermal2D(64, 64, 6, 3),
	}
	for name, m := range mats {
		st, tg := analyzed(t, m)
		for _, nodes := range []int{1, 4, 16} {
			sp := simOne(t, st, tg, baseCfg(SymPACK, nodes, 4))
			bl := simOne(t, st, tg, baseCfg(Baseline, nodes, 4))
			if sp.FactorSeconds >= bl.FactorSeconds {
				t.Fatalf("%s nodes=%d: symPACK factor %.4gs not better than baseline %.4gs",
					name, nodes, sp.FactorSeconds, bl.FactorSeconds)
			}
			if sp.SolveSeconds >= bl.SolveSeconds {
				t.Fatalf("%s nodes=%d: symPACK solve %.4gs not better than baseline %.4gs",
					name, nodes, sp.SolveSeconds, bl.SolveSeconds)
			}
		}
	}
}

// Strong scaling: more nodes must help (or at least not catastrophically
// hurt) symPACK factorization on a problem with enough work.
func TestSymPACKStrongScales(t *testing.T) {
	st, tg := analyzed(t, gen.Flan3D(6, 6, 6, 1))
	t1 := simOne(t, st, tg, baseCfg(SymPACK, 1, 4)).FactorSeconds
	t4 := simOne(t, st, tg, baseCfg(SymPACK, 4, 4)).FactorSeconds
	if t4 >= t1 {
		t.Fatalf("4 nodes (%.4gs) not faster than 1 node (%.4gs)", t4, t1)
	}
}

// GPU offload must speed up the factorization of a dense-supernode problem.
func TestGPUSpeedsUpFactorization(t *testing.T) {
	st, tg := analyzed(t, gen.Flan3D(8, 8, 8, 1))
	cfgGPU := baseCfg(SymPACK, 1, 4)
	cfgCPU := cfgGPU
	cfgCPU.GPUsPerNode = 0
	gpuT := simOne(t, st, tg, cfgGPU)
	cpuT := simOne(t, st, tg, cfgCPU)
	if gpuT.FactorSeconds >= cpuT.FactorSeconds {
		t.Fatalf("GPU run (%.4gs) not faster than CPU run (%.4gs)", gpuT.FactorSeconds, cpuT.FactorSeconds)
	}
	if gpuT.GPUTaskShare <= 0 {
		t.Fatal("no tasks offloaded")
	}
	if cpuT.GPUTaskShare != 0 {
		t.Fatal("CPU run reported offloaded tasks")
	}
	// Most tasks stay on the CPU (Fig. 6's shape).
	if gpuT.GPUTaskShare > 0.5 {
		t.Fatalf("offload share %.2f implausibly high", gpuT.GPUTaskShare)
	}
}

// On the thermal problem (deep, thin structure — paper Fig. 12) the
// baseline's solve must stop scaling long before symPACK's: its
// improvement from 4 to 16 nodes must be small while symPACK keeps
// winning in absolute terms at every node count.
func TestBaselineSolveStagnatesOnThermal(t *testing.T) {
	st, tg := analyzed(t, gen.Thermal2D(96, 96, 6, 3))
	for _, nodes := range []int{1, 4, 16} {
		sp := simOne(t, st, tg, baseCfg(SymPACK, nodes, 4)).SolveSeconds
		bl := simOne(t, st, tg, baseCfg(Baseline, nodes, 4)).SolveSeconds
		if sp >= bl {
			t.Fatalf("nodes=%d: symPACK solve %.4gs not better than baseline %.4gs", nodes, sp, bl)
		}
	}
	// The baseline may show steeper *relative* scaling (the paper explains
	// this is an artifact of its much worse single-node time, §5.3); what
	// must hold is that its advantage never materializes in absolute terms
	// and that its single-node handicap is substantial.
	sp1 := simOne(t, st, tg, baseCfg(SymPACK, 1, 4)).SolveSeconds
	bl1 := simOne(t, st, tg, baseCfg(Baseline, 1, 4)).SolveSeconds
	if bl1 < 1.5*sp1 {
		t.Fatalf("baseline single-node solve handicap too small: %.4gs vs %.4gs", bl1, sp1)
	}
}

func TestCommBytesGrowWithRanks(t *testing.T) {
	st, tg := analyzed(t, gen.Laplace3D(7, 7, 7))
	one := simOne(t, st, tg, baseCfg(SymPACK, 1, 1))
	many := simOne(t, st, tg, baseCfg(SymPACK, 4, 4))
	if one.CommBytes != 0 {
		t.Fatalf("single rank moved %d bytes over the wire", one.CommBytes)
	}
	if many.CommBytes == 0 {
		t.Fatal("multi-rank run moved no bytes")
	}
}

func TestSimulateValidation(t *testing.T) {
	st, tg := analyzed(t, gen.Laplace2D(6, 6))
	if _, err := Simulate(st, tg, Config{Solver: SymPACK, Nodes: 0, RanksPerNode: 4}); err == nil {
		t.Fatal("expected layout error")
	}
	if _, err := Simulate(st, tg, Config{Solver: Solver(9), Nodes: 1, RanksPerNode: 1}); err == nil {
		t.Fatal("expected solver error")
	}
}

func TestStrongScalingSweep(t *testing.T) {
	st, tg := analyzed(t, gen.Laplace3D(6, 6, 6))
	sc := DefaultSweep(SymPACK)
	sc.NodeCounts = []int{1, 2, 4}
	sc.RPNChoices = []int{2, 4}
	pts, err := StrongScaling(st, tg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.FactorSeconds <= 0 || pt.SolveSeconds <= 0 {
			t.Fatalf("bad point %+v", pt)
		}
		found := false
		for _, rpn := range sc.RPNChoices {
			if pt.BestFactorRPN == rpn {
				found = true
			}
		}
		if !found {
			t.Fatalf("best RPN %d not among choices", pt.BestFactorRPN)
		}
	}
}

// Determinism: the DES is a pure function of its inputs.
func TestSimulateDeterministic(t *testing.T) {
	st, tg := analyzed(t, gen.Bone3D(8, 8, 8, 0.3, 1))
	a := simOne(t, st, tg, baseCfg(SymPACK, 4, 4))
	// Rebuild the task graph to guard against accidental mutation of tg.
	tg2 := symbolic.BuildTaskGraph(st)
	b := simOne(t, st, tg2, baseCfg(SymPACK, 4, 4))
	if a.FactorSeconds != b.FactorSeconds || a.SolveSeconds != b.SolveSeconds {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestSolverString(t *testing.T) {
	if SymPACK.String() == "" || Baseline.String() == "" {
		t.Fatal("solver names")
	}
}

// NIC contention must slow communication-heavy runs and leave single-node
// runs untouched.
func TestNICContention(t *testing.T) {
	st, tg := analyzed(t, gen.Flan3D(6, 6, 6, 1))
	base := baseCfg(SymPACK, 8, 8) // many ranks per node → shared NICs
	free := simOne(t, st, tg, base)
	cont := base
	cont.ModelNICContention = true
	shared := simOne(t, st, tg, cont)
	if shared.FactorSeconds < free.FactorSeconds {
		t.Fatalf("contention cannot speed things up: %.4g vs %.4g",
			shared.FactorSeconds, free.FactorSeconds)
	}
	// Single node: all traffic is intra-node; contention must be a no-op.
	one := baseCfg(SymPACK, 1, 4)
	a := simOne(t, st, tg, one)
	one.ModelNICContention = true
	b := simOne(t, st, tg, one)
	if a.FactorSeconds != b.FactorSeconds {
		t.Fatalf("single-node times must match: %.6g vs %.6g", a.FactorSeconds, b.FactorSeconds)
	}
}
