package des

import (
	"sync"

	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/symbolic"
)

// ScalingPoint is one x-position of a strong-scaling figure: the best time
// achieved at a node count across the ranks-per-node choices tried, which
// is exactly how the paper reports its data points (§5.3: "the result from
// the run that yielded the best performance for a given node count").
type ScalingPoint struct {
	Nodes         int
	FactorSeconds float64
	SolveSeconds  float64
	BestFactorRPN int
	BestSolveRPN  int
}

// SweepConfig parameterizes a strong-scaling sweep.
type SweepConfig struct {
	Solver      Solver
	NodeCounts  []int
	RPNChoices  []int // ranks-per-node values to try (best is reported)
	GPUsPerNode int
	Machine     machine.Machine
	Thresholds  gpu.Thresholds
	// Formulation and Mapping select the scheduling variant the symPACK
	// personality sweeps (zero values: fan-out on the 2D cyclic map).
	Formulation symbolic.Formulation
	Mapping     symbolic.MappingKind
}

// DefaultSweep mirrors the paper's experiment grid: 1–64 Perlmutter GPU
// nodes, four GPUs each, several processes-per-node configurations.
func DefaultSweep(s Solver) SweepConfig {
	return SweepConfig{
		Solver:      s,
		NodeCounts:  []int{1, 2, 4, 8, 16, 32, 64},
		RPNChoices:  []int{4, 8, 16},
		GPUsPerNode: 4,
		Machine:     machine.Perlmutter(),
		Thresholds:  gpu.DefaultThresholds(),
	}
}

// StrongScaling runs the sweep over one analyzed problem, returning one
// point per node count. Simulations are independent pure functions, so the
// grid runs concurrently across the host's cores.
func StrongScaling(st *symbolic.Structure, tg *symbolic.TaskGraph, sc SweepConfig) ([]ScalingPoint, error) {
	points := make([]ScalingPoint, len(sc.NodeCounts))
	var wg sync.WaitGroup
	errs := make([]error, len(sc.NodeCounts))
	for pi, nodes := range sc.NodeCounts {
		wg.Add(1)
		go func(pi, nodes int) {
			defer wg.Done()
			pt := ScalingPoint{Nodes: nodes, FactorSeconds: -1, SolveSeconds: -1}
			for _, rpn := range sc.RPNChoices {
				res, err := Simulate(st, tg, Config{
					Solver:       sc.Solver,
					Nodes:        nodes,
					RanksPerNode: rpn,
					GPUsPerNode:  sc.GPUsPerNode,
					Machine:      sc.Machine,
					Thresholds:   sc.Thresholds,
					Formulation:  sc.Formulation,
					Mapping:      sc.Mapping,
				})
				if err != nil {
					errs[pi] = err
					return
				}
				if pt.FactorSeconds < 0 || res.FactorSeconds < pt.FactorSeconds {
					pt.FactorSeconds = res.FactorSeconds
					pt.BestFactorRPN = rpn
				}
				if pt.SolveSeconds < 0 || res.SolveSeconds < pt.SolveSeconds {
					pt.SolveSeconds = res.SolveSeconds
					pt.BestSolveRPN = rpn
				}
			}
			points[pi] = pt
		}(pi, nodes)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}
