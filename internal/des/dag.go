package des

import (
	"sort"

	"sympack/internal/machine"
	"sympack/internal/simnet"
	"sympack/internal/symbolic"
)

// bytesOf returns the wire size of a dense m×n block.
func bytesOf(m, n int) int64 { return int64(m) * int64(n) * 8 }

// ------------------------------------------------------ symPACK factor ----

// buildSymPACKFactorDAG lowers the block task graph (D/F/U of §3.2) to sim
// tasks with the fan-out communication pattern: per-block messages, 2D
// block-cyclic owners, GDR device transfers for offload-bound diagonal
// blocks, per-op thresholds. It returns the tasks and the offloaded-task
// fraction.
func buildSymPACKFactorDAG(st *symbolic.Structure, tg *symbolic.TaskGraph, cfg *Config) ([]simTask, float64) {
	m := &cfg.Machine
	m2d := cfg.blockMap(st)
	nsn := st.NumSupernodes()
	useGPU := cfg.GPUsPerNode > 0

	// Task ids: D_k = k; F_b = nsn + offIdx[b]; U_u = nsn + nOff + u.
	offIdx := make([]int32, len(st.Blocks))
	nOff := int32(0)
	for bi := range st.Blocks {
		if !st.Blocks[bi].IsDiag() {
			offIdx[bi] = nOff
			nOff++
		} else {
			offIdx[bi] = -1
		}
	}
	fTask := func(bid int32) int32 { return int32(nsn) + offIdx[bid] }
	uBase := int32(nsn) + nOff
	tasks := make([]simTask, int(uBase)+len(tg.Updates))
	gpuTasks := 0

	// blockTask returns the task computing a block's final factor value.
	blockTask := func(bid int32) int32 {
		b := &st.Blocks[bid]
		if b.IsDiag() {
			return int32(b.Snode)
		}
		return fTask(bid)
	}

	offFns := [2]func(op machine.Op, elems int) bool{
		func(machine.Op, int) bool { return false },
		cfg.Thresholds.ShouldOffload,
	}
	offload := offFns[0]
	if useGPU {
		offload = offFns[1]
	}

	devicePath := func() simnet.Path {
		if m.GDR {
			return simnet.PathGDR
		}
		return simnet.PathStaged
	}

	// D tasks.
	for k := 0; k < nsn; k++ {
		sn := &st.Snodes[k]
		nc := sn.NCols()
		diag := st.DiagBlock(int32(k))
		owner := int32(symbolic.OwnerOfBlock(m2d, diag))
		fl := machine.KernelFlops(machine.OpPotrf, 0, nc, 0)
		t := &tasks[k]
		t.owner = owner
		t.device = -1
		t.indeg = tg.InUpdates[diag.ID]
		if offload(machine.OpPotrf, nc*nc) {
			t.device = deviceOf(cfg, int(owner))
			t.cost = m.GPUTime(fl) + 2*m.HostDeviceCopyTime(bytesOf(nc, nc))
			gpuTasks++
		} else {
			t.cost = m.CPUTime(fl)
		}
		t.cost += symPACKTaskOverhead
	}
	// F tasks + D→F edges.
	for bi := range st.Blocks {
		b := &st.Blocks[bi]
		if b.IsDiag() {
			continue
		}
		nc := st.Snodes[b.Snode].NCols()
		mRows := int(b.NRows)
		owner := int32(symbolic.OwnerOfBlock(m2d, b))
		id := fTask(b.ID)
		t := &tasks[id]
		t.owner = owner
		t.device = -1
		t.indeg = tg.InUpdates[b.ID] + 1
		fl := machine.KernelFlops(machine.OpTrsm, mRows, nc, 0)
		diagEdgePath := simnet.PathHostHost
		if offload(machine.OpTrsm, mRows*nc) {
			t.device = deviceOf(cfg, int(owner))
			// The diagonal operand arrives device-direct (the paper's
			// GPU-blocks optimization), so only the panel block stages.
			t.cost = m.GPUTime(fl) + 2*m.HostDeviceCopyTime(bytesOf(mRows, nc))
			diagEdgePath = devicePath()
			gpuTasks++
		} else {
			t.cost = m.CPUTime(fl)
		}
		t.cost += symPACKTaskOverhead
		dk := int32(b.Snode)
		tasks[dk].succ = append(tasks[dk].succ, edge{to: id, bytes: bytesOf(nc, nc), path: diagEdgePath})
	}
	// U tasks + F→U and U→target edges. A fetched source block is cached
	// in device memory by its consumer, so its host→device copy is charged
	// only on first use per (block, rank) — matching the engine's fetched-
	// block cache.
	type blockRank struct {
		bid  int32
		rank int32
	}
	staged := map[blockRank]bool{}
	stageIn := func(bid, rank int32, bytes int64) float64 {
		key := blockRank{bid, rank}
		if staged[key] {
			return 0
		}
		staged[key] = true
		return m.HostDeviceCopyTime(bytes)
	}
	for ui := range tg.Updates {
		u := &tg.Updates[ui]
		id := uBase + int32(ui)
		ba := &st.Blocks[u.BlkA]
		bb := &st.Blocks[u.BlkB]
		w := st.Snodes[u.SrcSn].NCols()
		mB, nA := int(bb.NRows), int(ba.NRows)
		// The update executes at the owner of the formulation's compute
		// block: the target under fan-out, a source operand under
		// fan-in/fan-both — the same placement rule the real engine uses.
		owner := int32(symbolic.OwnerOfBlock(m2d, &st.Blocks[cfg.Formulation.ComputeBlock(u)]))
		t := &tasks[id]
		t.owner = owner
		t.device = -1
		var fl int64
		var op machine.Op
		if u.IsSyrk() {
			t.indeg = 1
			op = machine.OpSyrk
			fl = machine.KernelFlops(machine.OpSyrk, mB, w, 0)
		} else {
			t.indeg = 2
			op = machine.OpGemm
			fl = machine.KernelFlops(machine.OpGemm, mB, nA, w)
		}
		srcPath := simnet.PathHostHost
		if offload(op, mB*nA) {
			t.device = deviceOf(cfg, int(owner))
			in := stageIn(u.BlkB, owner, bytesOf(mB, w))
			if !u.IsSyrk() {
				in += stageIn(u.BlkA, owner, bytesOf(nA, w))
			}
			t.cost = m.GPUTime(fl) + in + m.HostDeviceCopyTime(bytesOf(mB, nA))
			// Operands destined for the device travel the memory-kinds
			// path: zero-copy under GDR, host-staged without it.
			srcPath = devicePath()
			gpuTasks++
		} else {
			t.cost = m.CPUTime(fl)
		}
		t.cost += scatterCost(mB*nA) + symPACKTaskOverhead
		// Source edges (fan-out messages, per-block).
		fa := fTask(u.BlkA)
		tasks[fa].succ = append(tasks[fa].succ, edge{to: id, bytes: bytesOf(nA, w), path: srcPath})
		if u.BlkB != u.BlkA {
			fb := fTask(u.BlkB)
			tasks[fb].succ = append(tasks[fb].succ, edge{to: id, bytes: bytesOf(mB, w), path: srcPath})
		}
		// Completion edge into the target's factor task: an in-place apply
		// under fan-out (same owner, nothing on the wire), a delivered
		// contribution message under fan-in/fan-both. The scheduler only
		// charges the bytes when the endpoint owners differ, so a compute
		// site that happens to be the target's owner delivers for free —
		// matching the engine. The scatter itself stays charged on the U
		// task (a modeling simplification; the apply is memory-bound and
		// rank-local either way).
		done := edge{to: blockTask(u.Target)}
		if cfg.Formulation.DeliversContributions() {
			done.bytes = bytesOf(mB, nA)
			done.path = simnet.PathHostHost
		}
		tasks[id].succ = append(tasks[id].succ, done)
	}
	return tasks, share(gpuTasks, len(tasks))
}

// ----------------------------------------------------- baseline factor ----

// buildBaselineFactorDAG lowers the factorization to the PaStiX-like
// right-looking shape: one panel task per supernode (POTRF plus the whole
// panel TRSM, CPU-only — PaStiX's CUDA support offloads update GEMMs, not
// the panel kernels), block-granular update tasks like the fan-out solver
// but owned under a 1D cyclic column-block distribution, two-sided
// rendezvous messages, per-operation host-staged device copies with no
// device-side operand caching, and StarPU's heavier per-task overhead.
func buildBaselineFactorDAG(st *symbolic.Structure, tg *symbolic.TaskGraph, cfg *Config) ([]simTask, float64) {
	m := &cfg.Machine
	p := cfg.Ranks()
	nsn := st.NumSupernodes()
	useGPU := cfg.GPUsPerNode > 0

	owner1D := func(sn int32) int32 { return sn % int32(p) }

	// Task ids: panel_k = k; U_u = nsn + u.
	tasks := make([]simTask, nsn+len(tg.Updates))
	gpuTasks := 0

	// Panel indegree = number of updates whose target lies in the panel's
	// supernode.
	for ui := range tg.Updates {
		tasks[st.Blocks[tg.Updates[ui].Target].Snode].indeg++
	}
	for k := 0; k < nsn; k++ {
		sn := &st.Snodes[k]
		nc, nr := sn.NCols(), sn.NRows()
		fl := machine.KernelFlops(machine.OpPotrf, 0, nc, 0) +
			machine.KernelFlops(machine.OpTrsm, nr-nc, nc, 0)
		t := &tasks[k]
		t.owner = owner1D(int32(k))
		t.device = -1
		t.cost = m.CPUTime(fl) + baselineTaskOverhead
	}
	for ui := range tg.Updates {
		u := &tg.Updates[ui]
		id := nsn + ui
		ba := &st.Blocks[u.BlkA]
		bb := &st.Blocks[u.BlkB]
		w := st.Snodes[u.SrcSn].NCols()
		mB, nA := int(bb.NRows), int(ba.NRows)
		tgtSn := st.Blocks[u.Target].Snode
		t := &tasks[id]
		t.owner = owner1D(tgtSn)
		t.device = -1
		t.indeg = 1
		var fl int64
		if u.IsSyrk() {
			fl = machine.KernelFlops(machine.OpSyrk, mB, w, 0)
		} else {
			fl = machine.KernelFlops(machine.OpGemm, mB, nA, w)
		}
		if useGPU && mB*nA >= cfg.Thresholds.Gemm {
			t.device = deviceOf(cfg, int(t.owner))
			// Staged, uncached copies: both operands and the result
			// cross PCIe on every task.
			in := bytesOf(mB, w)
			if !u.IsSyrk() {
				in += bytesOf(nA, w)
			}
			t.cost = m.GPUTime(fl) + m.HostDeviceCopyTime(in) + m.HostDeviceCopyTime(bytesOf(mB, nA))
			gpuTasks++
		} else {
			t.cost = m.CPUTime(fl)
		}
		t.cost += scatterCost(mB*nA) + baselineTaskOverhead
		// Rendezvous message from the source panel owner (one logical
		// panel broadcast; charged per consuming task at block size).
		srcBytes := bytesOf(mB, w)
		if !u.IsSyrk() {
			srcBytes += bytesOf(nA, w)
		}
		tasks[u.SrcSn].succ = append(tasks[u.SrcSn].succ,
			edge{to: int32(id), bytes: srcBytes, path: simnet.PathTwoSided})
		// Completion into the target panel.
		t.succ = append(t.succ, edge{to: tgtSn})
	}
	return tasks, share(gpuTasks, len(tasks))
}

// -------------------------------------------------------------- solves ----

// simulateSolve models the forward substitution DAG and doubles it for the
// symmetric backward pass. symPACK uses block-granular tasks on the 2D map
// with one-sided messages; the baseline uses supernode-granular tasks on
// the 1D map with rendezvous messages — the difference behind Fig. 12's
// divergence on deep, thin elimination trees.
func simulateSolve(st *symbolic.Structure, cfg *Config, net *simnet.Network, isBaseline bool) float64 {
	m := &cfg.Machine
	p := cfg.Ranks()
	nsn := st.NumSupernodes()

	var tasks []simTask
	if !isBaseline {
		m2d := symbolic.NewMap2D(p)
		// Tasks: S_k = k (diagonal solve), G_b = nsn + offIdx (panel
		// contribution). The RHS segments are distributed round-robin
		// over ranks rather than at the diagonal blocks' 2D owners: a 2D
		// block-cyclic map concentrates the (k,k) blocks on the grid
		// diagonal (only gcd-many distinct owners), which would serialize
		// the solve; distributing the vector 1D-cyclically is the
		// standard fix and matches how PGAS solvers distribute RHS data.
		offIdx := make([]int32, len(st.Blocks))
		nOff := int32(0)
		for bi := range st.Blocks {
			if !st.Blocks[bi].IsDiag() {
				offIdx[bi] = nOff
				nOff++
			}
		}
		tasks = make([]simTask, int32(nsn)+nOff)
		// indeg of S_k = number of blocks whose rows land in supernode k.
		for k := 0; k < nsn; k++ {
			sn := &st.Snodes[k]
			nc := sn.NCols()
			t := &tasks[k]
			t.owner = int32(k % p)
			t.device = -1
			t.cost = m.CPUTime(int64(nc)*int64(nc)) + symPACKTaskOverhead
		}
		for bi := range st.Blocks {
			b := &st.Blocks[bi]
			if b.IsDiag() {
				continue
			}
			tasks[b.RowSn].indeg++
			id := int32(nsn) + offIdx[bi]
			nc := st.Snodes[b.Snode].NCols()
			t := &tasks[id]
			t.owner = int32(symbolic.OwnerOfBlock(m2d, b))
			t.device = -1
			t.indeg = 1
			t.cost = m.CPUTime(2*int64(b.NRows)*int64(nc)) + symPACKTaskOverhead
			// S_snode → G_b carries the solved slice; G_b → S_RowSn
			// carries the contribution.
			tasks[b.Snode].succ = append(tasks[b.Snode].succ,
				edge{to: id, bytes: int64(nc) * 8, path: simnet.PathHostHost})
			t.succ = append(t.succ,
				edge{to: int32(b.RowSn), bytes: int64(b.NRows) * 8, path: simnet.PathHostHost})
		}
	} else {
		// Supernode-granular 1D solve: S_k does the diagonal solve plus
		// the entire panel gemv, then messages each target supernode.
		tasks = make([]simTask, nsn)
		type tgtSet map[int32]int64 // target → rows contributed
		targets := make([]tgtSet, nsn)
		for k := 0; k < nsn; k++ {
			sn := &st.Snodes[k]
			nc, nr := sn.NCols(), sn.NRows()
			t := &tasks[k]
			t.owner = int32(k % p)
			t.device = -1
			t.cost = m.CPUTime(int64(nc)*int64(nc)+2*int64(nr-nc)*int64(nc)) + baselineTaskOverhead
			targets[k] = tgtSet{}
			blks := st.SnodeBlocks(int32(k))
			for bi := 1; bi < len(blks); bi++ {
				targets[k][blks[bi].RowSn] += int64(blks[bi].NRows)
			}
		}
		for k := 0; k < nsn; k++ {
			// Emit edges in sorted target order: successor order steers
			// the DES tie-breaks, and map order would leak Go's map
			// randomization into the simulated schedule.
			tgts := make([]int32, 0, len(targets[k]))
			for tgt := range targets[k] {
				tgts = append(tgts, tgt)
			}
			sort.Slice(tgts, func(i, j int) bool { return tgts[i] < tgts[j] })
			for _, tgt := range tgts {
				tasks[tgt].indeg++
				tasks[k].succ = append(tasks[k].succ,
					edge{to: tgt, bytes: targets[k][tgt] * 8, path: simnet.PathTwoSided})
			}
		}
	}
	s := newSched(tasks, net, p, cfg.RanksPerNode, cfg.Nodes*max(cfg.GPUsPerNode, 1))
	s.enableNICContention(cfg)
	forward := s.run()
	return 2 * forward
}

func share(part, whole int) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
