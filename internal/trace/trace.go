// Package trace records per-task execution events from the solver's ranks
// and exports them in the Chrome trace-event format (chrome://tracing,
// Perfetto), giving the Gantt view of the fan-out schedule that papers in
// this area (including symPACK's antecedents) use to study pipeline
// behaviour.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one completed unit of work on a rank.
type Event struct {
	Rank   int32
	Lane   int32  // intra-rank execution lane: worker index, or the rank's progress lane
	Kind   string // "POTRF", "TRSM", "SYRK", "GEMM", "rget", "poll", ...
	Start  time.Duration
	End    time.Duration
	Detail string // e.g. "sn=12" or "blk=140"
}

// Recorder accumulates events from concurrent ranks. A nil *Recorder is
// valid and records nothing, so call sites need no guards.
type Recorder struct {
	mu     sync.Mutex
	t0     time.Time
	events []Event
}

// New returns a recorder whose clock starts now.
func New() *Recorder {
	// The recorder is the one component whose job is real wall time:
	// Chrome-trace timestamps profile the host execution, by design, and
	// never feed solver state. The suppressions below are the audited
	// false positives of sympacklint's wallclock analyzer (DESIGN.md §10).
	//lint:ignore wallclock trace timestamps profile host wall time by design; never feed factor bits
	return &Recorder{t0: time.Now()}
}

// Begin returns the current offset for a subsequent End call.
func (r *Recorder) Begin() time.Duration {
	if r == nil {
		return 0
	}
	//lint:ignore wallclock trace timestamps profile host wall time by design; never feed factor bits
	return time.Since(r.t0)
}

// End records an event that started at the offset returned by Begin, on the
// rank's lane 0.
func (r *Recorder) End(rank int32, kind string, start time.Duration, detail string) {
	r.EndLane(rank, 0, kind, start, detail)
}

// EndLane records an event on a specific execution lane of a rank. The
// engine's worker pool gives each executor goroutine its own lane so the
// Chrome trace shows intra-rank concurrency as parallel rows under the
// rank's process group.
func (r *Recorder) EndLane(rank, lane int32, kind string, start time.Duration, detail string) {
	if r == nil {
		return
	}
	//lint:ignore wallclock,nondetflow trace timestamps profile host wall time by design; never feed factor bits
	now := time.Since(r.t0)
	r.mu.Lock()
	r.events = append(r.events, Event{Rank: rank, Lane: lane, Kind: kind, Start: start, End: now, Detail: detail})
	r.mu.Unlock()
}

// Len returns the recorded event count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the recorded events sorted by start time.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// WriteChromeTrace emits the events as a Chrome trace-event JSON array: one
// complete ("X") event per task, with the rank as the process id and the
// intra-rank lane (worker index) as the thread id, so a multi-worker run
// renders one row per executor goroutine grouped under its rank. Load the
// file in chrome://tracing or ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	evs := r.Events()
	for i, e := range evs {
		sep := ","
		if i == len(evs)-1 {
			sep = ""
		}
		// Injected-fault and recovery events ("fault:*" kinds) get their
		// own category so they can be toggled independently of the task
		// Gantt rows in the trace viewer.
		cat := "task"
		if strings.HasPrefix(e.Kind, "fault:") {
			cat = "fault"
		}
		// Timestamps and durations are microseconds in the format.
		_, err := fmt.Fprintf(bw,
			"  {\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d,\"args\":{\"detail\":%q}}%s\n",
			e.Kind, cat,
			float64(e.Start.Nanoseconds())/1e3,
			float64((e.End-e.Start).Nanoseconds())/1e3,
			e.Rank, e.Lane, e.Detail, sep)
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// KindSummary aggregates total busy time and call counts per event kind.
type KindSummary struct {
	Kind  string
	Count int
	Busy  time.Duration
}

// Summary returns per-kind aggregates sorted by descending busy time.
func (r *Recorder) Summary() []KindSummary {
	agg := map[string]*KindSummary{}
	for _, e := range r.Events() {
		s := agg[e.Kind]
		if s == nil {
			s = &KindSummary{Kind: e.Kind}
			agg[e.Kind] = s
		}
		s.Count++
		s.Busy += e.End - e.Start
	}
	out := make([]KindSummary, 0, len(agg))
	for _, s := range agg {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Busy > out[j].Busy })
	return out
}

// RankUtilization returns, per rank, the fraction of the makespan the rank
// spent inside recorded events — the load-balance view of a run.
func (r *Recorder) RankUtilization() map[int32]float64 {
	evs := r.Events()
	if len(evs) == 0 {
		return nil
	}
	var makespan time.Duration
	busy := map[int32]time.Duration{}
	for _, e := range evs {
		busy[e.Rank] += e.End - e.Start
		if e.End > makespan {
			makespan = e.End
		}
	}
	out := make(map[int32]float64, len(busy))
	for rank, b := range busy {
		out[rank] = float64(b) / float64(makespan)
	}
	return out
}
