package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := New()
	s1 := r.Begin()
	time.Sleep(time.Millisecond)
	r.End(0, "POTRF", s1, "sn=1")
	s2 := r.Begin()
	r.End(1, "GEMM", s2, "upd=3")
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != "POTRF" || evs[1].Kind != "GEMM" {
		t.Fatalf("order wrong: %+v", evs)
	}
	if evs[0].End < evs[0].Start {
		t.Fatal("negative duration")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	s := r.Begin()
	r.End(0, "X", s, "")
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder should be inert")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	r := New()
	for i := 0; i < 5; i++ {
		s := r.Begin()
		r.End(int32(i%2), "TRSM", s, "blk=\"quoted\"")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed) != 5 {
		t.Fatalf("events = %d", len(parsed))
	}
	if parsed[0]["ph"] != "X" || parsed[0]["name"] != "TRSM" {
		t.Fatalf("event shape wrong: %v", parsed[0])
	}
}

func TestChromeTraceFaultCategory(t *testing.T) {
	r := New()
	s := r.Begin()
	r.End(0, "POTRF", s, "sn=1")
	s = r.Begin()
	r.End(1, "fault:re-request", s, "blk=7")
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	cats := map[string]string{}
	for _, e := range parsed {
		cats[e["name"].(string)] = e["cat"].(string)
	}
	if cats["POTRF"] != "task" || cats["fault:re-request"] != "fault" {
		t.Fatalf("categories wrong: %v", cats)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	r := New()
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil || len(parsed) != 0 {
		t.Fatalf("empty trace should be []: %v %s", err, buf.String())
	}
}

func TestSummaryAndUtilization(t *testing.T) {
	r := New()
	for i := 0; i < 3; i++ {
		s := r.Begin()
		time.Sleep(200 * time.Microsecond)
		r.End(0, "GEMM", s, "")
	}
	s := r.Begin()
	time.Sleep(100 * time.Microsecond)
	r.End(1, "POTRF", s, "")
	sum := r.Summary()
	if len(sum) != 2 {
		t.Fatalf("kinds = %d", len(sum))
	}
	if sum[0].Kind != "GEMM" || sum[0].Count != 3 {
		t.Fatalf("summary order/count wrong: %+v", sum)
	}
	util := r.RankUtilization()
	if len(util) != 2 {
		t.Fatalf("ranks = %d", len(util))
	}
	for rank, u := range util {
		if u <= 0 || u > 1 {
			t.Fatalf("rank %d utilization %g out of range", rank, u)
		}
	}
	if util[0] <= util[1] {
		t.Fatalf("rank 0 (busier) should have higher utilization: %v", util)
	}
}
