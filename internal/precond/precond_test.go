package precond

import (
	"errors"
	"math/rand"
	"testing"

	"sympack/internal/core"
	"sympack/internal/gen"
	"sympack/internal/krylov"
	"sympack/internal/matrix"
)

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", None, false},
		{"none", None, false},
		{"IC", IC, false},
		{"ichol", IC, false},
		{"ilu", None, true},
	} {
		got, err := ParseKind(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

func TestNewICFactorsSPDGrid(t *testing.T) {
	mats := map[string]*matrix.SparseSym{
		"laplace2d": gen.Laplace2D(10, 10),
		"laplace3d": gen.Laplace3D(5, 5, 4),
		"thermal2d": gen.Thermal2D(9, 9, 2, 1),
		"randspd":   gen.RandomSPD(80, 0.05, 2),
	}
	for name, a := range mats {
		for _, level := range []int{0, 1, 2} {
			ic, err := NewIC(a, Options{Level: level})
			if err != nil {
				t.Fatalf("%s level %d: %v", name, level, err)
			}
			if !ic.F.St.Incomplete {
				t.Fatalf("%s level %d: factor structure not marked Incomplete", name, level)
			}
			if ic.Bytes() <= 0 {
				t.Fatalf("%s level %d: Bytes() = %d", name, level, ic.Bytes())
			}
		}
	}
}

// TestICAcceleratesCG is the subsystem's reason to exist: PCG with IC(1)
// must converge in strictly fewer matvecs than unpreconditioned CG.
func TestICAcceleratesCG(t *testing.T) {
	a := gen.Laplace2D(20, 20)
	b := make([]float64, a.N)
	rng := rand.New(rand.NewSource(4))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	plain, err := krylov.Solve(a, b, krylov.Options{Rtol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIC(a, Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	pcg, err := krylov.Solve(a, b, krylov.Options{Rtol: 1e-8, Precond: ic})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !pcg.Converged {
		t.Fatalf("convergence: cg=%v pcg=%v", plain.Converged, pcg.Converged)
	}
	if pcg.MatVecs >= plain.MatVecs {
		t.Fatalf("PCG+IC(1) took %d matvecs, CG took %d; preconditioning must help", pcg.MatVecs, plain.MatVecs)
	}
	t.Logf("matvecs: cg=%d pcg+ic(1)=%d", plain.MatVecs, pcg.MatVecs)
}

// TestICApplyMatchesDirectSolve: at a level high enough to admit all fill the
// incomplete factor is the complete factor, so Apply is a direct solve.
func TestICApplyMatchesDirectSolve(t *testing.T) {
	a := gen.Laplace2D(8, 8)
	ic, err := NewIC(a, Options{Level: a.N})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	rng := rand.New(rand.NewSource(6))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	z := make([]float64, a.N)
	if err := ic.Apply(z, b); err != nil {
		t.Fatal(err)
	}
	r := make([]float64, a.N)
	a.MulVecTo(r, z)
	for i := range r {
		r[i] -= b[i]
	}
	if rel := krylov.Norm2(r) / krylov.Norm2(b); rel > 1e-10 {
		t.Fatalf("full-level IC apply residual %g; should be a direct solve", rel)
	}
}

// indefiniteTestMatrix has one negative diagonal pivot: the unshifted
// factorization must break down and the shift retry loop must rescue it.
func indefiniteTestMatrix(t *testing.T) *matrix.SparseSym {
	t.Helper()
	n := 12
	c := matrix.NewCOO(n)
	for i := 0; i < n; i++ {
		d := 2.0
		if i == n/2 {
			d = -0.5
		}
		c.Add(i, i, d)
		if i+1 < n {
			c.Add(i+1, i, -0.4)
		}
	}
	a, err := c.ToSym()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewICShiftRetry(t *testing.T) {
	a := indefiniteTestMatrix(t)
	ic, err := NewIC(a, Options{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ic.Attempts < 2 || ic.Shift <= 0 {
		t.Fatalf("expected shifted retry, got attempts=%d shift=%g", ic.Attempts, ic.Shift)
	}
}

func TestNewICBreakdownExhaustsShifts(t *testing.T) {
	a := indefiniteTestMatrix(t)
	_, err := NewIC(a, Options{Level: 1, MaxShiftAttempts: 2})
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("want ErrBreakdown with a 2-attempt budget, got %v", err)
	}
}

// TestICDeterministicAcrossWorkers: the preconditioner build runs through the
// engine, so its values must be bit-identical across worker counts, and the
// PCG trajectory through it likewise.
func TestICDeterministicAcrossWorkers(t *testing.T) {
	a := gen.Thermal2D(12, 12, 3, 5)
	b := make([]float64, a.N)
	rng := rand.New(rand.NewSource(8))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var ref []float64
	for _, workers := range []int{1, 2, 4} {
		ic, err := NewIC(a, Options{Level: 1, Core: core.Options{Workers: workers}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res, err := krylov.Solve(a, b, krylov.Options{Rtol: 1e-9, Precond: ic, RecordTrajectory: true})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res.Trajectory
			continue
		}
		if len(res.Trajectory) != len(ref) {
			t.Fatalf("workers=%d: %d iterations vs %d at workers=1", workers, len(res.Trajectory), len(ref))
		}
		for i := range ref {
			if res.Trajectory[i] != ref[i] {
				t.Fatalf("workers=%d iteration %d: trajectory bits differ", workers, i)
			}
		}
	}
}
