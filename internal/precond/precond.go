// Package precond builds the blocked incomplete-Cholesky preconditioner of
// the iterative-solve subsystem: IC(k) symbolic analysis (internal/
// symbolic.AnalyzeIC) produces a level-limited block structure, the fan-out
// engine (internal/core) factors it through the ordinary task protocol —
// skipping contributions whose fill was dropped — and the resulting factor
// serves z = (L·Lᵀ)⁻¹·r applications inside PCG (internal/krylov). This is
// the reuse Kim et al.'s partitioned-block incomplete Cholesky paper
// (PAPERS.md) makes of exactly this supernodal machinery.
//
// Incomplete factorizations of SPD matrices can break down (a dropped
// contribution leaves a pivot ≤ 0); NewIC retries with a Manteuffel-style
// diagonal shift, σ escalating geometrically, until the factorization
// succeeds or the attempt budget runs out.
package precond

import (
	"errors"
	"fmt"
	"strings"

	"sympack/internal/core"
	"sympack/internal/matrix"
	"sympack/internal/symbolic"
)

// Kind names a preconditioner choice for CLIs and the facade.
type Kind uint8

const (
	// None runs unpreconditioned CG.
	None Kind = iota
	// IC applies the blocked IC(k) incomplete Cholesky factor.
	IC
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case IC:
		return "ic"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind converts a command-line style name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "", "none", "identity":
		return None, nil
	case "ic", "ic(k)", "ichol":
		return IC, nil
	default:
		return None, fmt.Errorf("precond: unknown preconditioner %q (want none or ic)", s)
	}
}

// Options tunes the IC(k) preconditioner.
type Options struct {
	// Level is the fill level k (default 0; 1 is the usual sweet spot).
	Level int
	// DropTol, when positive, magnitude-filters the matrix before level
	// expansion (see symbolic.ICOptions).
	DropTol float64
	// MaxShiftAttempts bounds the diagonal-shift retry loop on breakdown
	// (0 = default 8).
	MaxShiftAttempts int
	// Core configures the factorization engine used to compute the
	// incomplete factor: ranks, workers, formulation, mapping, precision —
	// the full distributed surface applies to the preconditioner build.
	Core core.Options
}

// ICFactor is a ready incomplete-Cholesky preconditioner.
type ICFactor struct {
	// F is the blocked incomplete factor; F.St.Incomplete is true.
	F *core.Factor
	// Shift is the diagonal shift σ that made the factorization succeed
	// (0 when the unshifted matrix factored).
	Shift float64
	// Attempts is the number of factorization attempts performed (1 when
	// no breakdown occurred).
	Attempts int
}

// ErrBreakdown is returned when every shifted attempt failed.
var ErrBreakdown = errors.New("precond: incomplete factorization broke down at every shift")

// NewIC analyzes and factors the IC(k) preconditioner for a. The symbolic
// phase runs once; breakdowns retry the numeric phase on a diagonally
// shifted copy (σ starting at 1e-3 of the mean diagonal, ×4 per attempt).
func NewIC(a *matrix.SparseSym, opt Options) (*ICFactor, error) {
	attempts := opt.MaxShiftAttempts
	if attempts <= 0 {
		attempts = 8
	}
	symOpt := symbolic.DefaultOptions()
	if opt.Core.Symbolic != nil {
		symOpt = *opt.Core.Symbolic
	}
	st, pa, err := symbolic.AnalyzeIC(a, opt.Core.Ordering, symOpt,
		symbolic.ICOptions{Level: opt.Level, DropTol: opt.DropTol})
	if err != nil {
		return nil, err
	}
	var mean float64
	for _, d := range pa.Diag() {
		mean += d
	}
	mean /= float64(pa.N)
	if mean <= 0 {
		mean = 1
	}

	ic := &ICFactor{}
	shift := 0.0
	next := 1e-3 * mean
	var lastErr error
	for i := 0; i < attempts; i++ {
		ic.Attempts++
		m := pa
		if shift > 0 {
			if m, err = pa.ShiftDiag(shift); err != nil {
				return nil, err
			}
		}
		f, ferr := core.FactorizeAnalyzed(st, m, opt.Core)
		if ferr == nil {
			ic.F = f
			ic.Shift = shift
			return ic, nil
		}
		if !errors.Is(ferr, core.ErrNotPositiveDefinite) {
			return nil, ferr
		}
		lastErr = ferr
		shift = next
		next *= 4
	}
	return nil, fmt.Errorf("%w after %d attempts (last shift %g): %v", ErrBreakdown, ic.Attempts, shift/4, lastErr)
}

// Apply solves L·Lᵀ·z = r, the PCG preconditioner application. The factor's
// triangular solves handle the fill-reducing permutation internally, so r
// and z are in the original (unpermuted) index space like every other
// solver entry point.
func (ic *ICFactor) Apply(z, r []float64) error {
	x, err := ic.F.Solve(r)
	if err != nil {
		return err
	}
	copy(z, x)
	return nil
}

// Bytes estimates the resident size of the preconditioner (factor block
// storage), for byte-budgeted caches.
func (ic *ICFactor) Bytes() int64 {
	var n int64
	for _, blk := range ic.F.Data {
		n += int64(len(blk)) * 8
	}
	return n + int64(ic.F.St.NnzL/8) // block values + a structure estimate
}
