package ordering

import (
	"testing"
	"testing/quick"

	"sympack/internal/gen"
	"sympack/internal/graph"
	"sympack/internal/matrix"
)

// bruteFill counts the nonzeros of the Cholesky factor of the permuted
// matrix by straightforward symbolic elimination; O(fill) with sets, fine
// for test-sized problems.
func bruteFill(a *matrix.SparseSym, perm []int32) int {
	p, err := a.Permute(perm)
	if err != nil {
		panic(err)
	}
	n := p.N
	rows := make([]map[int32]bool, n)
	for j := 0; j < n; j++ {
		rows[j] = map[int32]bool{}
		for q := p.ColPtr[j]; q < p.ColPtr[j+1]; q++ {
			if int(p.RowInd[q]) != j {
				rows[j][p.RowInd[q]] = true
			}
		}
	}
	fill := n // diagonal
	for j := 0; j < n; j++ {
		fill += len(rows[j])
		// Find the parent (minimum row index below j).
		var parent int32 = -1
		for r := range rows[j] {
			if parent == -1 || r < parent {
				parent = r
			}
		}
		if parent >= 0 {
			for r := range rows[j] {
				if r != parent {
					rows[parent][r] = true
				}
			}
		}
	}
	return fill
}

func allKinds() []Kind { return []Kind{Natural, RCM, MinDegree, NestedDissection} }

func TestComputeProducesValidPermutations(t *testing.T) {
	mats := map[string]*matrix.SparseSym{
		"laplace2d": gen.Laplace2D(9, 7),
		"laplace3d": gen.Laplace3D(4, 4, 4),
		"flan":      gen.Flan3D(3, 3, 2, 1),
		"bone":      gen.Bone3D(5, 5, 5, 0.3, 2),
		"thermal":   gen.Thermal2D(14, 14, 3, 3),
		"random":    gen.RandomSPD(40, 0.1, 4),
		"diag":      gen.RandomSPD(10, 0, 5), // disconnected (diagonal)
		"tiny":      gen.Laplace2D(1, 1),
	}
	for name, m := range mats {
		for _, k := range allKinds() {
			perm, err := Compute(k, m)
			if err != nil {
				t.Fatalf("%s/%v: %v", name, k, err)
			}
			if err := Validate(perm, m.N); err != nil {
				t.Fatalf("%s/%v: %v", name, k, err)
			}
		}
	}
}

func TestNestedDissectionReducesFill(t *testing.T) {
	m := gen.Laplace2D(16, 16)
	natural, _ := Compute(Natural, m)
	nd, _ := Compute(NestedDissection, m)
	md, _ := Compute(MinDegree, m)
	fNat := bruteFill(m, natural)
	fND := bruteFill(m, nd)
	fMD := bruteFill(m, md)
	if fND >= fNat {
		t.Fatalf("ND fill %d not better than natural %d", fND, fNat)
	}
	if fMD >= fNat {
		t.Fatalf("MD fill %d not better than natural %d", fMD, fNat)
	}
	t.Logf("fill: natural=%d nd=%d md=%d", fNat, fND, fMD)
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A random permutation of a banded problem: RCM must recover a small
	// bandwidth.
	m := gen.Laplace2D(30, 2)
	perm, _ := Compute(RCM, m)
	pm, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	band := 0
	for j := 0; j < pm.N; j++ {
		for p := pm.ColPtr[j]; p < pm.ColPtr[j+1]; p++ {
			if b := int(pm.RowInd[p]) - j; b > band {
				band = b
			}
		}
	}
	if band > 4 {
		t.Fatalf("RCM bandwidth = %d, want small", band)
	}
}

func TestMinDegreeOnCliqueAndPath(t *testing.T) {
	// Clique: any order gives the same fill; just verify validity.
	clique := gen.RandomSPD(8, 1.0, 1)
	perm, err := Compute(MinDegree, clique)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(perm, 8); err != nil {
		t.Fatal(err)
	}
	// Path: minimum degree yields zero fill.
	path := gen.Laplace2D(20, 1)
	perm, _ = Compute(MinDegree, path)
	if fill := bruteFill(path, perm); fill != path.Nnz() {
		t.Fatalf("MD on a path should give no fill: %d vs %d", fill, path.Nnz())
	}
}

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"SCOTCH": NestedDissection, "ND": NestedDissection, "METIS": NestedDissection,
		"AMD": MinDegree, "MMD": MinDegree,
		"RCM": RCM, "NATURAL": Natural,
	}
	for s, want := range cases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Fatalf("ParseKind(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range allKinds() {
		if k.String() == "" {
			t.Fatal("empty Kind string")
		}
	}
}

func TestInverse(t *testing.T) {
	perm := []int32{2, 0, 3, 1}
	inv := Inverse(perm)
	for k, old := range perm {
		if inv[old] != int32(k) {
			t.Fatalf("Inverse wrong at %d", k)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	if err := Validate([]int32{0, 1}, 3); err == nil {
		t.Fatal("length")
	}
	if err := Validate([]int32{0, 0, 2}, 3); err == nil {
		t.Fatal("duplicate")
	}
	if err := Validate([]int32{0, 1, 5}, 3); err == nil {
		t.Fatal("range")
	}
}

// Property: orderings are valid permutations for arbitrary random matrices,
// including disconnected ones.
func TestOrderingValidityProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, dRaw uint8) bool {
		n := int(nRaw%40) + 1
		density := float64(dRaw%10) / 20
		m := gen.RandomSPD(n, density, seed)
		for _, k := range allKinds() {
			perm, err := Compute(k, m)
			if err != nil || Validate(perm, n) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the separator-last invariant of nested dissection — on a
// connected grid, the last-ordered vertex must be a separator vertex whose
// removal with the rest of the tail disconnects nothing it shouldn't. We
// check the weaker but meaningful invariant that ND fill ≤ natural fill.
func TestNDFillNoWorseProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		nx, ny := int(a%8)+4, int(b%8)+4
		m := gen.Laplace2D(nx, ny)
		nat, _ := Compute(Natural, m)
		nd, _ := Compute(NestedDissection, m)
		// Thin strips are near-optimal under the natural banded order, so
		// allow a 10% slack there; square-ish grids must strictly improve.
		fNat, fND := bruteFill(m, nat), bruteFill(m, nd)
		if nx >= 10 && ny >= 10 {
			return fND < fNat
		}
		return float64(fND) <= 1.1*float64(fNat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBisectSeparates(t *testing.T) {
	m := gen.Laplace2D(12, 12)
	g := graph.FromSparse(m)
	verts := make([]int32, g.N)
	for i := range verts {
		verts[i] = int32(i)
	}
	sep, a, b := bisect(g, verts)
	if len(a) == 0 || len(b) == 0 || len(sep) == 0 {
		t.Fatalf("degenerate bisection: |sep|=%d |a|=%d |b|=%d", len(sep), len(a), len(b))
	}
	// No edge may connect A directly to B.
	side := make(map[int32]int8)
	for _, v := range a {
		side[v] = 0
	}
	for _, v := range b {
		side[v] = 2
	}
	for _, v := range sep {
		side[v] = 1
	}
	for v := int32(0); int(v) < g.N; v++ {
		if side[v] != 0 {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if side[w] == 2 {
				t.Fatalf("edge (%d,%d) crosses the separator", v, w)
			}
		}
	}
	// Separator should be roughly a grid line, not half the graph.
	if len(sep) > g.N/3 {
		t.Fatalf("separator too fat: %d of %d", len(sep), g.N)
	}
}

// greedyBisect handles graphs too shallow for level cuts: a clique-like
// dense graph exercises it through the ND entry point, and directly.
func TestGreedyBisectDirect(t *testing.T) {
	// A dense-ish graph with diameter 2: bisect falls through to the
	// greedy split.
	m := gen.RandomSPD(30, 0.6, 9)
	g := graph.FromSparse(m)
	verts := make([]int32, g.N)
	for i := range verts {
		verts[i] = int32(i)
	}
	sub, glob := g.InducedSubgraph(verts)
	sep, a, b := greedyBisect(sub, glob)
	if len(sep)+len(a)+len(b) != g.N {
		t.Fatalf("partition does not cover: %d+%d+%d != %d", len(sep), len(a), len(b), g.N)
	}
	side := map[int32]int8{}
	for _, v := range a {
		side[v] = 0
	}
	for _, v := range b {
		side[v] = 2
	}
	for _, v := range sep {
		side[v] = 1
	}
	for v := int32(0); int(v) < g.N; v++ {
		if side[v] != 0 {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if side[w] == 2 {
				t.Fatalf("edge (%d,%d) crosses the greedy separator", v, w)
			}
		}
	}
	// The dense graph must still produce a valid ND ordering end to end
	// (exercising the clique fallback inside ndRecurse too).
	big := gen.RandomSPD(80, 0.7, 10)
	perm, err := Compute(NestedDissection, big)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(perm, big.N); err != nil {
		t.Fatal(err)
	}
}

// refineSeparator's swap move: construct a path where a separator vertex
// has exactly one far-side neighbor, so the zero-gain swap fires.
func TestRefineSeparatorSwap(t *testing.T) {
	// Path 0-1-2-3-4: sides {0,1}=A, {2}=sep, {3,4}=B initially, then
	// unbalance A to force the swap toward it.
	m := gen.Laplace2D(9, 1)
	g := graph.FromSparse(m)
	side := []int8{0, 0, 1, 2, 2, 2, 2, 2, 2} // A small, B big
	refineSeparator(g, side, 4)
	nSep := 0
	for _, s := range side {
		if s == 1 {
			nSep++
		}
	}
	if nSep != 1 {
		t.Fatalf("path separator should stay size 1, got %d (%v)", nSep, side)
	}
	// The separator vertex must still separate.
	for v := int32(0); int(v) < g.N; v++ {
		if side[v] != 0 {
			continue
		}
		for _, w := range g.Neighbors(v) {
			if side[w] == 2 {
				t.Fatalf("refinement broke the separator: edge (%d,%d)", v, w)
			}
		}
	}
}
