// Package ordering computes fill-reducing orderings for sparse symmetric
// matrices. It is the substitute for the Scotch library the paper uses
// (§5, AD/AE): the primary algorithm is nested dissection (George [10]),
// with minimum-degree used on small subproblems and available standalone,
// plus reverse Cuthill–McKee and the identity ordering for comparison.
//
// All functions return a permutation in new-to-old form: perm[k] is the
// original index of the k-th row/column of the reordered matrix, the
// convention accepted by matrix.SparseSym.Permute.
package ordering

import (
	"fmt"
	"sort"

	"sympack/internal/graph"
	"sympack/internal/matrix"
)

// Kind selects an ordering algorithm.
type Kind int

const (
	// Natural is the identity ordering (no permutation).
	Natural Kind = iota
	// RCM is reverse Cuthill–McKee (bandwidth reducing).
	RCM
	// MinDegree is quotient-graph minimum degree.
	MinDegree
	// NestedDissection is recursive graph bisection with vertex
	// separators ordered last — the Scotch-equivalent default.
	NestedDissection
)

func (k Kind) String() string {
	switch k {
	case Natural:
		return "NATURAL"
	case RCM:
		return "RCM"
	case MinDegree:
		return "MINDEGREE"
	case NestedDissection:
		return "SCOTCH-ND"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a command-line style name ("SCOTCH", "ND", "AMD", ...)
// into a Kind. The paper's driver accepts "-ordering SCOTCH"; we map that to
// nested dissection.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "NATURAL", "natural", "NONE":
		return Natural, nil
	case "RCM", "rcm":
		return RCM, nil
	case "MINDEGREE", "MMD", "AMD", "amd", "md":
		return MinDegree, nil
	case "SCOTCH", "scotch", "ND", "nd", "METIS":
		return NestedDissection, nil
	default:
		return Natural, fmt.Errorf("ordering: unknown kind %q", s)
	}
}

// Compute returns a fill-reducing permutation for the matrix.
func Compute(kind Kind, a *matrix.SparseSym) ([]int32, error) {
	g := graph.FromSparse(a)
	switch kind {
	case Natural:
		p := make([]int32, a.N)
		for i := range p {
			p[i] = int32(i)
		}
		return p, nil
	case RCM:
		return rcm(g), nil
	case MinDegree:
		return minDegree(g), nil
	case NestedDissection:
		return nestedDissection(g), nil
	default:
		return nil, fmt.Errorf("ordering: unknown kind %d", int(kind))
	}
}

// Validate checks that perm is a permutation of 0..n-1.
func Validate(perm []int32, n int) error {
	if len(perm) != n {
		return fmt.Errorf("ordering: permutation length %d != n %d", len(perm), n)
	}
	seen := make([]bool, n)
	for k, v := range perm {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("ordering: perm[%d]=%d out of range", k, v)
		}
		if seen[v] {
			return fmt.Errorf("ordering: duplicate value %d", v)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns the old-to-new inverse of a new-to-old permutation.
func Inverse(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for k, v := range perm {
		inv[v] = int32(k)
	}
	return inv
}

// ---------------------------------------------------------------- RCM ----

func rcm(g *graph.Graph) []int32 {
	n := g.N
	perm := make([]int32, 0, n)
	visited := make([]bool, n)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	for v0 := 0; v0 < n; v0++ {
		if visited[v0] {
			continue
		}
		root, _ := g.PseudoPeripheral(int32(v0), nil)
		// Cuthill–McKee BFS ordering neighbors by increasing degree.
		start := len(perm)
		perm = append(perm, root)
		visited[root] = true
		for head := start; head < len(perm); head++ {
			v := perm[head]
			nbrs := make([]int32, 0, g.Degree(v))
			for _, w := range g.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			sort.Slice(nbrs, func(a, b int) bool { return g.Degree(nbrs[a]) < g.Degree(nbrs[b]) })
			perm = append(perm, nbrs...)
		}
		// Reverse this component's span.
		for i, j := start, len(perm)-1; i < j; i, j = i+1, j-1 {
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return perm
}

// --------------------------------------------------------- MinDegree ----

// minDegree implements quotient-graph minimum degree with exact external
// degrees and element absorption (George & Liu's QMD family). Eliminated
// pivots become elements; a vertex's neighborhood is its remaining vertex
// adjacency plus the union of its adjacent elements' vertex lists.
func minDegree(g *graph.Graph) []int32 {
	n := g.N
	// Mutable vertex adjacency and element membership.
	vadj := make([][]int32, n)
	for v := 0; v < n; v++ {
		vadj[v] = append([]int32(nil), g.Neighbors(int32(v))...)
	}
	eadj := make([][]int32, n)  // elements adjacent to each vertex
	elems := make([][]int32, 0) // element id → vertex list
	eliminated := make([]bool, n)
	degree := make([]int, n)
	for v := 0; v < n; v++ {
		degree[v] = len(vadj[v])
	}
	marker := make([]int32, n)
	for i := range marker {
		marker[i] = -1
	}
	stamp := int32(0)

	// Lazy min-heap over (degree, vertex).
	h := &degHeap{}
	for v := 0; v < n; v++ {
		h.push(degree[v], int32(v))
	}

	// reach computes the current neighborhood of v (excluding v and
	// eliminated vertices) into out, using marker/stamp for dedup.
	reach := func(v int32, out []int32) []int32 {
		stamp++
		marker[v] = stamp
		out = out[:0]
		for _, w := range vadj[v] {
			if !eliminated[w] && marker[w] != stamp {
				marker[w] = stamp
				out = append(out, w)
			}
		}
		for _, e := range eadj[v] {
			for _, w := range elems[e] {
				if !eliminated[w] && marker[w] != stamp {
					marker[w] = stamp
					out = append(out, w)
				}
			}
		}
		return out
	}

	perm := make([]int32, 0, n)
	var lp []int32
	for len(perm) < n {
		p := h.popValid(eliminated, degree)
		lp = reach(p, lp)
		eliminated[p] = true
		perm = append(perm, p)
		if len(lp) == 0 {
			continue
		}
		// New element from the pivot's neighborhood.
		eid := int32(len(elems))
		elems = append(elems, append([]int32(nil), lp...))
		absorbed := eadj[p]
		stampAbs := make(map[int32]bool, len(absorbed))
		for _, e := range absorbed {
			stampAbs[e] = true
		}
		for _, v := range lp {
			// Drop absorbed elements and append the new one.
			ea := eadj[v][:0]
			for _, e := range eadj[v] {
				if !stampAbs[e] {
					ea = append(ea, e)
				}
			}
			eadj[v] = append(ea, eid)
			// Prune vertex adjacency: drop eliminated vertices and
			// vertices covered by the new element.
			stamp++
			for _, w := range elems[eid] {
				marker[w] = stamp
			}
			va := vadj[v][:0]
			for _, w := range vadj[v] {
				if !eliminated[w] && marker[w] != stamp {
					va = append(va, w)
				}
			}
			vadj[v] = va
			// Exact external degree refresh.
			var tmp []int32
			tmp = reach(v, tmp)
			degree[v] = len(tmp)
			h.push(degree[v], v)
		}
		// Free absorbed element storage.
		for _, e := range absorbed {
			elems[e] = nil
		}
	}
	return perm
}

// degHeap is a binary min-heap with lazy invalidation: stale entries are
// skipped at pop time when their recorded degree no longer matches.
type degHeap struct {
	deg []int
	v   []int32
}

func (h *degHeap) push(d int, v int32) {
	h.deg = append(h.deg, d)
	h.v = append(h.v, v)
	i := len(h.deg) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.deg[p] <= h.deg[i] {
			break
		}
		h.deg[p], h.deg[i] = h.deg[i], h.deg[p]
		h.v[p], h.v[i] = h.v[i], h.v[p]
		i = p
	}
}

func (h *degHeap) pop() (int, int32) {
	d, v := h.deg[0], h.v[0]
	last := len(h.deg) - 1
	h.deg[0], h.v[0] = h.deg[last], h.v[last]
	h.deg, h.v = h.deg[:last], h.v[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.deg) && h.deg[l] < h.deg[small] {
			small = l
		}
		if r < len(h.deg) && h.deg[r] < h.deg[small] {
			small = r
		}
		if small == i {
			break
		}
		h.deg[i], h.deg[small] = h.deg[small], h.deg[i]
		h.v[i], h.v[small] = h.v[small], h.v[i]
		i = small
	}
	return d, v
}

// popValid pops until it finds a live entry whose degree is current.
func (h *degHeap) popValid(eliminated []bool, degree []int) int32 {
	for {
		d, v := h.pop()
		if !eliminated[v] && degree[v] == d {
			return v
		}
	}
}

// -------------------------------------------------- NestedDissection ----

// ndLeafSize is the subproblem size below which recursion stops and
// minimum degree takes over; 48 balances separator quality against the
// cost of deep recursion on small meshes.
const ndLeafSize = 48

func nestedDissection(g *graph.Graph) []int32 {
	perm := make([]int32, 0, g.N)
	for _, comp := range g.Components(nil) {
		perm = ndRecurse(g, comp, perm)
	}
	return perm
}

// ndRecurse orders the vertex set `verts` (one connected subset of g),
// appending to perm: first the two halves (recursively), then the separator.
func ndRecurse(g *graph.Graph, verts []int32, perm []int32) []int32 {
	if len(verts) <= ndLeafSize {
		// Order the leaf with minimum degree on the induced subgraph.
		sub, glob := g.InducedSubgraph(verts)
		for _, lv := range minDegree(sub) {
			perm = append(perm, glob[lv])
		}
		return perm
	}
	sep, a, b := bisect(g, verts)
	if len(a) == 0 || len(b) == 0 {
		// Bisection failed to split (e.g. a clique); fall back to MD.
		sub, glob := g.InducedSubgraph(verts)
		for _, lv := range minDegree(sub) {
			perm = append(perm, glob[lv])
		}
		return perm
	}
	// Recurse on connected components within each half so disconnected
	// pieces don't share separators.
	perm = ndRecurseSet(g, a, perm)
	perm = ndRecurseSet(g, b, perm)
	perm = append(perm, sep...)
	return perm
}

// ndRecurseSet splits a vertex set into its connected components (within the
// set) and recurses on each.
func ndRecurseSet(g *graph.Graph, verts []int32, perm []int32) []int32 {
	if len(verts) == 0 {
		return perm
	}
	sub, glob := g.InducedSubgraph(verts)
	comps := sub.Components(nil)
	if len(comps) == 1 {
		return ndRecurse(g, verts, perm)
	}
	for _, c := range comps {
		gl := make([]int32, len(c))
		for i, lv := range c {
			gl[i] = glob[lv]
		}
		perm = ndRecurse(g, gl, perm)
	}
	return perm
}

// bisect finds a vertex separator of the induced subgraph over verts using a
// BFS level-structure median cut, then minimizes it by discarding separator
// vertices with no neighbors on one side. It returns (separator, sideA,
// sideB) as global vertex lists.
func bisect(g *graph.Graph, verts []int32) (sep, a, b []int32) {
	sub, glob := g.InducedSubgraph(verts)
	_, ls := sub.PseudoPeripheral(0, nil)
	if ls.Depth() < 3 {
		// Too shallow to cut by levels: greedy half split with the
		// boundary as separator.
		return greedyBisect(sub, glob)
	}
	// Choose the level whose cut best balances the halves.
	half := len(ls.Order) / 2
	cut := 1
	bestBal := -1
	for k := 1; k+1 < ls.Depth(); k++ {
		below := int(ls.Levels[k])
		above := len(ls.Order) - int(ls.Levels[k+1])
		bal := min(below, above)
		if bal > bestBal {
			bestBal, cut = bal, k
		}
		if below > half {
			break
		}
	}
	side := make([]int8, sub.N) // 0 = A, 1 = separator candidate, 2 = B
	for k := 0; k < ls.Depth(); k++ {
		var s int8
		switch {
		case k < cut:
			s = 0
		case k == cut:
			s = 1
		default:
			s = 2
		}
		for _, v := range ls.Order[ls.Levels[k]:ls.Levels[k+1]] {
			side[v] = s
		}
	}
	refineSeparator(sub, side, 4)
	for lv := 0; lv < sub.N; lv++ {
		gv := glob[lv]
		switch side[lv] {
		case 0:
			a = append(a, gv)
		case 1:
			sep = append(sep, gv)
		default:
			b = append(b, gv)
		}
	}
	return sep, a, b
}

// refineSeparator runs FM-style passes over a vertex separator encoded in
// side (0 = A, 1 = separator, 2 = B): a separator vertex with neighbors on
// at most one side leaves the separator (a unit gain); a vertex with
// exactly one neighbor on the opposite side swaps with it (zero immediate
// gain, but the swap often exposes unit gains on the next pass). Balance is
// respected by preferring moves into the smaller side.
func refineSeparator(sub *graph.Graph, side []int8, maxPasses int) {
	sizeA, sizeB := 0, 0
	for v := 0; v < sub.N; v++ {
		switch side[v] {
		case 0:
			sizeA++
		case 2:
			sizeB++
		}
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for v := int32(0); int(v) < sub.N; v++ {
			if side[v] != 1 {
				continue
			}
			var nA, nB int
			var lone int32 = -1
			for _, w := range sub.Neighbors(v) {
				switch side[w] {
				case 0:
					nA++
				case 2:
					nB++
					lone = w
				}
			}
			switch {
			case nA == 0 && nB == 0:
				if sizeA <= sizeB {
					side[v] = 0
					sizeA++
				} else {
					side[v] = 2
					sizeB++
				}
				improved = true
			case nB == 0:
				side[v] = 0
				sizeA++
				improved = true
			case nA == 0:
				side[v] = 2
				sizeB++
				improved = true
			case nB == 1 && sizeA < sizeB:
				// Swap: v joins A, its single B-neighbor covers for it.
				side[v] = 0
				side[lone] = 1
				sizeA++
				sizeB--
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// greedyBisect handles shallow graphs: take the first half of a BFS order as
// A, the rest as B, and promote A-vertices adjacent to B into the separator.
func greedyBisect(sub *graph.Graph, glob []int32) (sep, a, b []int32) {
	dist := make([]int32, sub.N)
	for i := range dist {
		dist[i] = -1
	}
	ls := sub.BFS(0, nil, dist)
	half := len(ls.Order) / 2
	side := make([]int8, sub.N)
	for i, v := range ls.Order {
		if i < half {
			side[v] = 0
		} else {
			side[v] = 2
		}
	}
	for v := 0; v < sub.N; v++ {
		if side[v] != 0 {
			continue
		}
		for _, w := range sub.Neighbors(int32(v)) {
			if side[w] == 2 {
				side[v] = 1
				break
			}
		}
	}
	for lv := 0; lv < sub.N; lv++ {
		gv := glob[lv]
		switch side[lv] {
		case 0:
			a = append(a, gv)
		case 1:
			sep = append(sep, gv)
		default:
			b = append(b, gv)
		}
	}
	return sep, a, b
}
