package graph

import (
	"testing"

	"sympack/internal/gen"
)

func pathGraph(n int) *Graph {
	return FromSparse(gen.Laplace2D(n, 1))
}

func TestFromSparseAdjacency(t *testing.T) {
	s := gen.Laplace2D(3, 2) // 3x2 grid
	g := FromSparse(s)
	if g.N != 6 {
		t.Fatalf("N = %d", g.N)
	}
	// Vertex 0 (corner) neighbors: 1 (right) and 3 (up).
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 3 {
		t.Fatalf("neighbors(0) = %v, want [1 3]", nb)
	}
	// Vertex 4 (middle of top row): neighbors 1, 3, 5.
	nb = g.Neighbors(4)
	if len(nb) != 3 || nb[0] != 1 || nb[1] != 3 || nb[2] != 5 {
		t.Fatalf("neighbors(4) = %v, want [1 3 5]", nb)
	}
	// Degrees are symmetric: every edge appears in both lists.
	for v := int32(0); int(v) < g.N; v++ {
		for _, w := range g.Neighbors(v) {
			found := false
			for _, x := range g.Neighbors(w) {
				if x == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not symmetric", v, w)
			}
		}
	}
}

func TestBFSLevels(t *testing.T) {
	g := pathGraph(5) // path of 5 vertices
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	ls := g.BFS(0, nil, dist)
	if ls.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", ls.Depth())
	}
	if ls.Width() != 1 {
		t.Fatalf("width = %d, want 1", ls.Width())
	}
	if len(ls.Order) != 5 {
		t.Fatalf("order covers %d vertices", len(ls.Order))
	}
	for i, v := range ls.Order {
		if int(v) != i {
			t.Fatalf("path BFS order wrong at %d: %d", i, v)
		}
	}
}

func TestBFSMask(t *testing.T) {
	g := pathGraph(5)
	mask := []bool{true, true, false, true, true}
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	ls := g.BFS(0, mask, dist)
	if len(ls.Order) != 2 {
		t.Fatalf("masked BFS reached %d vertices, want 2", len(ls.Order))
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	g := pathGraph(9)
	root, ls := g.PseudoPeripheral(4, nil) // start mid-path
	if root != 0 && root != 8 {
		t.Fatalf("pseudo-peripheral of a path should be an endpoint, got %d", root)
	}
	if ls.Depth() != 9 {
		t.Fatalf("eccentricity = %d, want 9", ls.Depth())
	}
}

func TestComponents(t *testing.T) {
	// Two disjoint paths via a block-diagonal matrix.
	s := gen.RandomSPD(4, 0, 1) // diagonal only: 4 singletons
	g := FromSparse(s)
	comps := g.Components(nil)
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	g2 := pathGraph(6)
	comps2 := g2.Components(nil)
	if len(comps2) != 1 || len(comps2[0]) != 6 {
		t.Fatalf("path should be one component of 6, got %v", comps2)
	}
	// Masked components.
	mask := []bool{true, true, true, false, true, true}
	comps3 := g2.Components(mask)
	if len(comps3) != 2 {
		t.Fatalf("masked path should split into 2 components, got %d", len(comps3))
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromSparse(gen.Laplace2D(3, 3))
	verts := []int32{0, 1, 3, 4}
	sub, glob := g.InducedSubgraph(verts)
	if sub.N != 4 {
		t.Fatalf("sub.N = %d", sub.N)
	}
	if len(glob) != 4 || glob[0] != 0 {
		t.Fatalf("glob = %v", glob)
	}
	// In the 2x2 corner of the grid, vertex 0 connects to 1 and 3 (local 1, 2).
	nb := sub.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("sub neighbors(0) = %v", nb)
	}
	// Edge count: 4 edges in the 2x2 block.
	if len(sub.Adj) != 8 {
		t.Fatalf("sub edge endpoints = %d, want 8", len(sub.Adj))
	}
}

func TestLevelStructureWidth(t *testing.T) {
	g := FromSparse(gen.Laplace2D(4, 4))
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = -1
	}
	ls := g.BFS(0, nil, dist)
	// Diagonal BFS on a 4x4 grid: widths 1,2,3,4,3,2,1 → max 4.
	if ls.Width() != 4 {
		t.Fatalf("width = %d, want 4", ls.Width())
	}
	if ls.Depth() != 7 {
		t.Fatalf("depth = %d, want 7", ls.Depth())
	}
}
