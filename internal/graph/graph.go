// Package graph provides the undirected-graph machinery consumed by the
// fill-reducing ordering phase: compressed adjacency, breadth-first level
// structures, pseudo-peripheral vertex search and connected components.
package graph

import "sympack/internal/matrix"

// Graph is an undirected graph in compressed adjacency (CSR) form. Self
// loops are excluded. Neighbor lists are sorted.
type Graph struct {
	N   int
	Ptr []int32
	Adj []int32
}

// FromSparse builds the adjacency graph of a symmetric matrix: vertices are
// rows/columns, edges are off-diagonal nonzeros.
func FromSparse(s *matrix.SparseSym) *Graph {
	n := s.N
	deg := make([]int32, n)
	for j := 0; j < n; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i := int(s.RowInd[p])
			if i != j {
				deg[i]++
				deg[j]++
			}
		}
	}
	g := &Graph{N: n, Ptr: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		g.Ptr[v+1] = g.Ptr[v] + deg[v]
	}
	g.Adj = make([]int32, g.Ptr[n])
	pos := make([]int32, n)
	copy(pos, g.Ptr[:n])
	for j := 0; j < n; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			i := int(s.RowInd[p])
			if i != j {
				g.Adj[pos[i]] = int32(j)
				pos[i]++
				g.Adj[pos[j]] = int32(i)
				pos[j]++
			}
		}
	}
	// Row indices are emitted in increasing column order for row i, and in
	// increasing row order for column j, so each neighbor list is already
	// sorted ascending by construction of the two passes? Not quite: list v
	// receives neighbors from both roles. Sort defensively.
	for v := 0; v < n; v++ {
		insertionSort(g.Adj[g.Ptr[v]:g.Ptr[v+1]])
	}
	return g
}

func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int { return int(g.Ptr[v+1] - g.Ptr[v]) }

// Neighbors returns the (sorted) adjacency list of v; the slice aliases the
// graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// LevelStructure holds a BFS layering rooted at some vertex, restricted to
// the vertices in one connected component (or an induced subset).
type LevelStructure struct {
	Order  []int32 // vertices in BFS order
	Levels []int32 // Levels[k] = start offset of level k in Order; len = depth+1
}

// Depth returns the number of BFS levels.
func (ls *LevelStructure) Depth() int { return len(ls.Levels) - 1 }

// Width returns the maximum level size.
func (ls *LevelStructure) Width() int {
	w := 0
	for k := 0; k+1 < len(ls.Levels); k++ {
		if sz := int(ls.Levels[k+1] - ls.Levels[k]); sz > w {
			w = sz
		}
	}
	return w
}

// BFS computes the level structure rooted at root over the vertices where
// mask[v] is true (a nil mask means all vertices). The scratch slice `dist`
// must have length N and be filled with -1 for masked-in vertices; it is
// returned updated so callers can reuse it (re-set visited entries to -1 to
// reuse).
func (g *Graph) BFS(root int32, mask []bool, dist []int32) *LevelStructure {
	order := make([]int32, 0, 64)
	order = append(order, root)
	dist[root] = 0
	levels := []int32{0}
	head := 0
	curLevel := int32(0)
	for head < len(order) {
		v := order[head]
		if dist[v] > curLevel {
			levels = append(levels, int32(head))
			curLevel = dist[v]
		}
		head++
		for _, w := range g.Neighbors(v) {
			if dist[w] >= 0 {
				continue
			}
			if mask != nil && !mask[w] {
				continue
			}
			dist[w] = dist[v] + 1
			order = append(order, w)
		}
	}
	levels = append(levels, int32(len(order)))
	return &LevelStructure{Order: order, Levels: levels}
}

// PseudoPeripheral finds a vertex of (approximately) maximal eccentricity in
// the component containing start, using the Gibbs–Poole–Stockmeyer
// iteration. It returns the vertex and its final level structure.
func (g *Graph) PseudoPeripheral(start int32, mask []bool) (int32, *LevelStructure) {
	dist := make([]int32, g.N)
	reset := func(ls *LevelStructure) {
		for _, v := range ls.Order {
			dist[v] = -1
		}
	}
	for i := range dist {
		dist[i] = -1
	}
	root := start
	ls := g.BFS(root, mask, dist)
	for iter := 0; iter < 8; iter++ {
		// Pick a minimum-degree vertex in the last level.
		last := ls.Order[ls.Levels[ls.Depth()-1]:ls.Levels[ls.Depth()]]
		best := last[0]
		for _, v := range last[1:] {
			if g.Degree(v) < g.Degree(best) {
				best = v
			}
		}
		reset(ls)
		ls2 := g.BFS(best, mask, dist)
		if ls2.Depth() <= ls.Depth() {
			// Restore dist for the returned structure's invariant and stop.
			return root, ls2
		}
		root, ls = best, ls2
	}
	return root, ls
}

// Components returns the connected components over the vertices where
// mask[v] is true (nil mask = all), each as a sorted vertex list.
func (g *Graph) Components(mask []bool) [][]int32 {
	seen := make([]bool, g.N)
	var comps [][]int32
	stack := make([]int32, 0, 64)
	for v := 0; v < g.N; v++ {
		if seen[v] || (mask != nil && !mask[v]) {
			continue
		}
		var comp []int32
		stack = append(stack[:0], int32(v))
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, w := range g.Neighbors(u) {
				if seen[w] || (mask != nil && !mask[w]) {
					continue
				}
				seen[w] = true
				stack = append(stack, w)
			}
		}
		insertionSortLarge(comp)
		comps = append(comps, comp)
	}
	return comps
}

func insertionSortLarge(a []int32) {
	// Components can be large; fall back to a shell sort that behaves well
	// without pulling in sort for int32 slices.
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(a); i++ {
			x := a[i]
			j := i
			for ; j >= gap && a[j-gap] > x; j -= gap {
				a[j] = a[j-gap]
			}
			a[j] = x
		}
	}
}

// InducedSubgraph extracts the subgraph over the given (sorted or unsorted)
// vertex set. It returns the subgraph and the local→global vertex mapping.
func (g *Graph) InducedSubgraph(verts []int32) (*Graph, []int32) {
	local := make(map[int32]int32, len(verts))
	for i, v := range verts {
		local[v] = int32(i)
	}
	sub := &Graph{N: len(verts), Ptr: make([]int32, len(verts)+1)}
	for i, v := range verts {
		cnt := int32(0)
		for _, w := range g.Neighbors(v) {
			if _, ok := local[w]; ok {
				cnt++
			}
		}
		sub.Ptr[i+1] = sub.Ptr[i] + cnt
	}
	sub.Adj = make([]int32, sub.Ptr[len(verts)])
	for i, v := range verts {
		p := sub.Ptr[i]
		for _, w := range g.Neighbors(v) {
			if lw, ok := local[w]; ok {
				sub.Adj[p] = lw
				p++
			}
		}
		insertionSort(sub.Adj[sub.Ptr[i]:sub.Ptr[i+1]])
	}
	glob := append([]int32(nil), verts...)
	return sub, glob
}
