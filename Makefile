# Developer entry points. `make lint` is the exact command CI's lint job
# runs, so one invocation reproduces the gate locally.

GO ?= go

.PHONY: all build test race vet lint

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs the standard analyzer set — which includes the -copylocks class
# of checks that guards the engine's typed atomics and mutex-holding
# structs against by-value copies — over the main and test packages.
vet:
	$(GO) vet ./...

# lint is vet plus the custom sympacklint suite (determinism, atomicity,
# future-error, and wall-clock invariants; see DESIGN.md §10). sympacklint
# exits 2 on any unsuppressed finding.
lint: vet
	$(GO) run ./cmd/sympacklint ./...
