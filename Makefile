# Developer entry points. `make lint` is the exact command CI's lint job
# runs, so one invocation reproduces the gate locally.

GO ?= go

.PHONY: all build test race vet lint lint-json lint-ratchet lint-baseline

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# vet runs the standard analyzer set — which includes the -copylocks class
# of checks that guards the engine's typed atomics and mutex-holding
# structs against by-value copies — over the main and test packages.
vet:
	$(GO) vet ./...

# lint is vet plus the custom sympacklint suite (determinism, atomicity,
# future-error, lockset/guarded-by, suppression-audit, and wall-clock
# invariants; see DESIGN.md §10). sympacklint exits 2 on any unsuppressed
# finding.
lint: vet
	$(GO) run ./cmd/sympacklint ./...

# lint-json emits the machine-readable report (one JSON object per line:
# file, line, analyzer, message, suppressed, note — audited suppressions
# included) to lint-report.jsonl. Same exit-code contract as lint.
lint-json:
	$(GO) run ./cmd/sympacklint -json ./... > lint-report.jsonl
	@echo "wrote lint-report.jsonl"

# lint-ratchet is the CI ratchet: fail only on findings absent from the
# committed baseline (empty today — the tree is clean — so it is exactly
# `make lint`'s sympacklint half until debt is ever accepted).
lint-ratchet:
	$(GO) run ./cmd/sympacklint -baseline lint-baseline.jsonl ./...

# lint-baseline rewrites the accepted-debt baseline from the current
# findings. Shrinking the file is always safe to merge; growing it is a
# reviewed decision.
lint-baseline:
	$(GO) run ./cmd/sympacklint -write-baseline lint-baseline.jsonl ./...
	@echo "wrote lint-baseline.jsonl"
