package sympack

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// This file is the acceptance battery of the iterative-solve subsystem
// (DESIGN.md §14): PCG+IC(k) must beat CG in matvecs on the SPD grid,
// trajectories must be bit-identical across worker and rank counts (clean
// and under chaos), and fp32 factorization plus fp64 refinement must reach
// direct-solver accuracy. CI's iter-matrix job shards it by exporting
// ITER_SOLVER (cg|pcg) and ITER_PRECISION (fp64|fp32); locally the full
// grid runs.

// iterGrid is the SPD property grid the battery runs on.
func iterGrid() map[string]*Matrix {
	return map[string]*Matrix{
		"laplace2d": Laplace2D(16, 16),
		"thermal2d": Thermal2D(14, 14, 3, 11),
		"randspd":   RandomSPD(200, 0.04, 12),
	}
}

func iterRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// iterSolvers returns the solver shard: both unless ITER_SOLVER narrows it.
func iterSolvers(t *testing.T) []string {
	switch s := os.Getenv("ITER_SOLVER"); s {
	case "":
		return []string{"cg", "pcg"}
	case "cg", "pcg":
		return []string{s}
	default:
		t.Fatalf("ITER_SOLVER=%q (want cg or pcg)", s)
		return nil
	}
}

// iterPrecisions returns the precision shard: both unless ITER_PRECISION
// narrows it.
func iterPrecisions(t *testing.T) []Precision {
	switch s := os.Getenv("ITER_PRECISION"); s {
	case "":
		return []Precision{PrecFP64, PrecFP32}
	default:
		p, err := ParsePrecision(s)
		if err != nil {
			t.Fatalf("ITER_PRECISION=%q: %v", s, err)
		}
		return []Precision{p}
	}
}

// TestIterPCGBeatsCG is the subsystem's headline acceptance criterion:
// PCG with IC(1) converges to rtol 1e-8 in strictly fewer matvecs than
// unpreconditioned CG on every grid point.
func TestIterPCGBeatsCG(t *testing.T) {
	for name, a := range iterGrid() {
		b := iterRHS(a.N, 21)
		cg, err := SolveCG(a, b, Options{}, CGOptions{Rtol: 1e-8})
		if err != nil {
			t.Fatalf("%s cg: %v", name, err)
		}
		pcg, err := SolveCG(a, b, Options{}, CGOptions{
			Rtol: 1e-8, Precond: PrecondIC, ICLevel: 1,
		})
		if err != nil {
			t.Fatalf("%s pcg: %v", name, err)
		}
		if !cg.Converged || !pcg.Converged {
			t.Fatalf("%s: converged cg=%v pcg=%v", name, cg.Converged, pcg.Converged)
		}
		if pcg.MatVecs >= cg.MatVecs {
			t.Fatalf("%s: pcg+ic(1) %d matvecs, cg %d; preconditioning must win", name, pcg.MatVecs, cg.MatVecs)
		}
		if res := ResidualNorm(a, pcg.X, b); res > 1e-7 {
			t.Fatalf("%s: pcg true residual %g", name, res)
		}
	}
}

// TestIterTrajectoryBitIdentical drives the sharded (solver × precision)
// grid across workers {1,2,4} × ranks {1,4}: every configuration must
// produce the same residual trajectory bits. Worker count, rank count and
// precondition-build scheduling may change wall time, never arithmetic.
func TestIterTrajectoryBitIdentical(t *testing.T) {
	a := Thermal2D(12, 12, 2, 31)
	b := iterRHS(a.N, 32)
	for _, solver := range iterSolvers(t) {
		for _, prec := range iterPrecisions(t) {
			t.Run(fmt.Sprintf("%s-%v", solver, prec), func(t *testing.T) {
				cg := CGOptions{Rtol: 1e-9, RecordTrajectory: true}
				if solver == "pcg" {
					cg.Precond = PrecondIC
					cg.ICLevel = 1
				}
				var ref []float64
				for _, workers := range []int{1, 2, 4} {
					for _, ranks := range []int{1, 4} {
						res, err := SolveCG(a, b, Options{
							Ranks: ranks, Workers: workers, Precision: prec,
						}, cg)
						if err != nil {
							t.Fatalf("w%d r%d: %v", workers, ranks, err)
						}
						if ref == nil {
							ref = res.Trajectory
							continue
						}
						if len(res.Trajectory) != len(ref) {
							t.Fatalf("w%d r%d: %d iterations vs %d reference", workers, ranks, len(res.Trajectory), len(ref))
						}
						for i := range ref {
							if res.Trajectory[i] != ref[i] {
								t.Fatalf("w%d r%d iteration %d: residual bits differ", workers, ranks, i)
							}
						}
					}
				}
			})
		}
	}
}

// TestIterTrajectoryUnderChaos crosses the preconditioner build with the
// runtime fault plan: injected faults may cost retries during the IC
// factorization, but the resulting PCG trajectory must be bit-identical to
// the clean run's.
func TestIterTrajectoryUnderChaos(t *testing.T) {
	a := Laplace2D(12, 12)
	b := iterRHS(a.N, 41)
	cg := CGOptions{Rtol: 1e-9, Precond: PrecondIC, ICLevel: 1, RecordTrajectory: true}
	clean, err := SolveCG(a, b, Options{Ranks: 4}, cg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		plan := DefaultChaosPlan(seed)
		res, err := SolveCG(a, b, Options{Ranks: 4, Faults: &plan}, cg)
		if err != nil {
			t.Fatalf("chaos seed %d: %v", seed, err)
		}
		if len(res.Trajectory) != len(clean.Trajectory) {
			t.Fatalf("chaos seed %d: %d iterations vs %d clean", seed, len(res.Trajectory), len(clean.Trajectory))
		}
		for i := range clean.Trajectory {
			if res.Trajectory[i] != clean.Trajectory[i] {
				t.Fatalf("chaos seed %d iteration %d: trajectory bits differ from clean run", seed, i)
			}
		}
	}
}

// TestIterFP32RefinementAccuracy is the mixed-precision acceptance
// criterion at the facade: an fp32 factor polished by fp64 refinement
// reaches ≤ 1e-10 relative residual on every grid point.
func TestIterFP32RefinementAccuracy(t *testing.T) {
	for name, a := range iterGrid() {
		b := iterRHS(a.N, 51)
		f, err := Factorize(a, Options{Precision: PrecFP32})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		x, rel, iters, err := f.SolveRefined(a, b, 1e-12, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel > 1e-10 {
			t.Fatalf("%s: fp32+refinement residual %g > 1e-10 after %d sweeps", name, rel, iters)
		}
		if got := ResidualNorm(a, x, b); got > 1e-10 {
			t.Fatalf("%s: actual residual %g", name, got)
		}
	}
}
