// Expert: the production-solver workflow around a factorization — assess
// conditioning, solve with iterative refinement, persist the factor for
// later runs, and pull selected entries of the inverse. Everything here
// runs off a single Factorize call.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"sympack"
)

func main() {
	// A moderately ill-conditioned problem: a fine-grid Laplacian.
	a := sympack.Laplace2D(48, 48)
	fmt.Printf("system: n=%d, nnz=%d\n", a.N, a.NnzFull())

	f, err := sympack.Factorize(a, sympack.Options{
		Ranks:      4,
		Scheduling: sympack.SchedCriticalPath,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factored in %v (%d supernodes, fill %.1fx)\n",
		f.Stats.Wall, f.Stats.Supernodes, float64(f.Stats.NnzL)/float64(a.Nnz()))

	// 1. Conditioning: Hager/Higham 1-norm estimate from a handful of
	// solves. (This generator adds a unit diagonal shift, so κ₁ stays
	// below ~9 at any grid size; an unshifted fine-grid Laplacian would
	// show thousands here.)
	cond, err := f.CondEst1(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated κ₁(A) ≈ %.3g\n", cond)

	// 2. Solve with refinement to working precision.
	rng := rand.New(rand.NewSource(3))
	b := make([]float64, a.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, rel, iters, err := f.SolveRefined(a, b, 1e-15, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved with %d refinement steps: relative residual %.3g\n", iters, rel)
	_ = x

	// 3. Persist the factor; a later process reloads it and solves without
	// refactoring (here: round-trip through a buffer).
	var store bytes.Buffer
	if err := f.Save(&store); err != nil {
		log.Fatal(err)
	}
	factorBytes := store.Len()
	g, err := sympack.LoadFactor(&store)
	if err != nil {
		log.Fatal(err)
	}
	x2, err := g.SolveDistributed(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded factor (%d bytes) solves: residual %.3g\n",
		factorBytes, sympack.ResidualNorm(a, x2, b))

	// 4. Selected inversion: variance-like diagnostics need diag(A⁻¹).
	si, err := g.SelectedInverse()
	if err != nil {
		log.Fatal(err)
	}
	d := si.Diag()
	var dMax float64
	for _, v := range d {
		if v > dMax {
			dMax = v
		}
	}
	fmt.Printf("selected inversion: %d entries on the factor pattern, max diag(A⁻¹) = %.4f\n",
		si.Nnz(), dMax)
}
