// Thermal: steady-state heat conduction on an irregular plate — the
// thermal2 regime of the paper's evaluation (very sparse, irregular
// structure, thin supernodes). The example generates a plate with voids,
// applies a heat source, solves for the temperature field with GPU offload
// enabled, and reports how the offload heuristic split the work (almost
// everything stays on the CPU for this structure, exactly the behaviour
// §5.2 discusses for small- and medium-sized blocks).
package main

import (
	"fmt"
	"log"

	"sympack"
)

func main() {
	// An irregular plate: 160×160 cells with elliptical voids cut out.
	a := sympack.Thermal2D(160, 160, 8, 7)
	fmt.Printf("thermal plate: n=%d, nnz=%d (%.1f nnz/row)\n",
		a.N, a.NnzFull(), float64(a.NnzFull())/float64(a.N))

	// Heat injected along one stripe of nodes; everything else sinks via
	// the diagonal's implicit coupling to ambient.
	b := make([]float64, a.N)
	for i := 0; i < a.N; i += 37 {
		b[i] = 10
	}

	// Factor with GPUs available: the thermal structure's thin supernodes
	// keep nearly all operations below the offload thresholds.
	f, err := sympack.Factorize(a, sympack.Options{
		Ranks:        8,
		RanksPerNode: 8,
		GPUsPerNode:  4,
	})
	if err != nil {
		log.Fatalf("factorization failed: %v", err)
	}
	x, err := f.SolveDistributed(b)
	if err != nil {
		log.Fatalf("solve failed: %v", err)
	}

	var tMax, tSum float64
	for _, v := range x {
		if v > tMax {
			tMax = v
		}
		tSum += v
	}
	fmt.Printf("temperature field: max=%.4f  mean=%.4f  residual=%.3g\n",
		tMax, tSum/float64(a.N), sympack.ResidualNorm(a, x, b))
	fmt.Printf("factorization: wall=%v  supernodes=%d  fill=%.2fx\n",
		f.Stats.Wall, f.Stats.Supernodes, float64(f.Stats.NnzL)/float64(a.Nnz()))

	var cpu, gpu int64
	for _, s := range f.Stats.PerRank {
		for op := range s.CPU {
			cpu += s.CPU[op]
			gpu += s.GPU[op]
		}
	}
	fmt.Printf("offload split: %d ops on CPU, %d on GPU — thin supernodes stay on the host\n", cpu, gpu)
}
