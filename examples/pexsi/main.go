// PEXSI-style workload: applications like PEXSI and contour-integral
// eigensolvers (paper §5.3) factor the same sparsity pattern many times at
// different shifts, which is where symPACK's per-factorization advantage
// compounds. This example brackets the smallest eigenvalue of a stiffness
// matrix by bisection on the shift σ: A − σI admits a Cholesky
// factorization exactly when σ < λ_min, so each probe is one numeric
// factorization reusing a single symbolic analysis.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"sympack"
)

func main() {
	// A 3D elasticity problem (the Flan_1565 regime: dense supernodes).
	a := sympack.Flan3D(5, 5, 5, 11)
	fmt.Printf("elasticity matrix: n=%d, nnz=%d\n", a.N, a.NnzFull())

	// One symbolic analysis serves every shifted factorization: the
	// pattern of A − σI is the pattern of A.
	opt := sympack.Options{Ranks: 4}
	an, err := sympack.Analyze(a, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis: %d supernodes, %.3g factor flops (reused across all shifts)\n",
		an.NumSupernodes(), float64(an.Flops()))

	// Bisection: Cholesky succeeds ⇔ A − σI is SPD ⇔ σ < λ_min.
	lo, hi := 0.0, 64.0
	probes := 0
	start := time.Now()
	for hi-lo > 1e-3*hi {
		mid := 0.5 * (lo + hi)
		shifted, err := a.ShiftDiag(-mid)
		if err != nil {
			log.Fatal(err)
		}
		probes++
		_, err = an.Factorize(shifted)
		switch {
		case err == nil:
			lo = mid // still SPD: λ_min > mid
		case errors.Is(err, sympack.ErrNotPositiveDefinite):
			hi = mid // indefinite: λ_min ≤ mid
		default:
			log.Fatalf("probe at σ=%g failed unexpectedly: %v", mid, err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("λ_min ∈ [%.5f, %.5f] after %d factorizations in %v (%.1fms each)\n",
		lo, hi, probes, elapsed, float64(elapsed.Milliseconds())/float64(probes))

	// The actual PEXSI computation: selected inversion. PEXSI evaluates
	// specific elements of (A − σI)⁻¹ — most importantly the diagonal —
	// without forming the inverse; SelectedInverse runs the supernodal
	// Takahashi recurrence over the factor's sparsity pattern.
	shifted, err := a.ShiftDiag(-0.5 * lo)
	if err != nil {
		log.Fatal(err)
	}
	f, err := an.Factorize(shifted)
	if err != nil {
		log.Fatal(err)
	}
	si, err := f.SelectedInverse()
	if err != nil {
		log.Fatal(err)
	}
	diag := si.Diag()
	var trace float64
	for _, v := range diag {
		trace += v
	}
	fmt.Printf("selected inversion at σ=%.4f: %d selected entries, tr((A−σI)⁻¹) = %.6f\n",
		0.5*lo, si.Nnz(), trace)

	// Cross-check one diagonal element against a direct solve of A·x = eᵢ.
	e := make([]float64, a.N)
	e[7] = 1
	x, err := f.Solve(e)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cross-check: (A−σI)⁻¹[7,7] selected=%.9f solve=%.9f\n", diag[7], x[7])
}
