// Quickstart: assemble a small SPD system, factor it with the fan-out
// solver, solve, and check the residual — the shortest tour of the public
// API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sympack"
)

func main() {
	// A 2D Poisson problem on a 60×60 grid: the canonical sparse SPD
	// system (n = 3600, five-point stencil).
	a := sympack.Laplace2D(60, 60)
	fmt.Printf("matrix: n=%d, nnz=%d\n", a.N, a.NnzFull())

	// A right-hand side with a known solution, so we can verify.
	rng := rand.New(rand.NewSource(42))
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue)

	// Factor across 4 simulated UPC++ ranks. Options{} zero value would
	// run a single rank; Ordering defaults to nested dissection (the
	// Scotch equivalent).
	f, err := sympack.Factorize(a, sympack.Options{Ranks: 4})
	if err != nil {
		log.Fatalf("factorization failed: %v", err)
	}
	fmt.Printf("factored: %d supernodes, %d blocks, nnz(L)=%d, wall=%v\n",
		f.Stats.Supernodes, f.Stats.Blocks, f.Stats.NnzL, f.Stats.Wall)

	// Solve with the distributed triangular solve and verify.
	x, err := f.SolveDistributed(b)
	if err != nil {
		log.Fatalf("solve failed: %v", err)
	}
	fmt.Printf("solved: relative residual = %.3g\n", sympack.ResidualNorm(a, x, b))

	// The same factor solves additional right-hand sides at will.
	b2 := make([]float64, a.N)
	for i := range b2 {
		b2[i] = 1
	}
	x2, err := f.Solve(b2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second rhs: relative residual = %.3g\n", sympack.ResidualNorm(a, x2, b2))
}
