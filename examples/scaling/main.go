// Scaling: a miniature of the paper's Figures 7–12 pipeline. It analyzes a
// generated problem once, replays the real task graph through the
// discrete-event machine model for both solvers across node counts, and
// prints the strong-scaling table — the same machinery cmd/benchfig uses at
// full size.
package main

import (
	"fmt"
	"log"

	"sympack/internal/des"
	"sympack/internal/gen"
	"sympack/internal/ordering"
	"sympack/internal/symbolic"
)

func main() {
	a := gen.Bone3D(16, 16, 16, 0.35, 10)
	fmt.Printf("bone-like matrix: n=%d, nnz=%d\n", a.N, a.NnzFull())

	st, _, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	tg := symbolic.BuildTaskGraph(st)
	fmt.Printf("symbolic: %d supernodes, %d blocks, %d update tasks, %.3g flops\n\n",
		st.NumSupernodes(), st.NumBlocks(), len(tg.Updates), float64(st.FactorFlop))

	sweep := des.DefaultSweep(des.SymPACK)
	sweep.NodeCounts = []int{1, 2, 4, 8, 16}
	sp, err := des.StrongScaling(st, tg, sweep)
	if err != nil {
		log.Fatal(err)
	}
	sweep.Solver = des.Baseline
	bl, err := des.StrongScaling(st, tg, sweep)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s | %-22s | %-22s | %s\n", "nodes",
		"factor  sympack/pastix", "solve   sympack/pastix", "factor speedup")
	for i := range sp {
		fmt.Printf("%-6d | %9.4gs %9.4gs | %9.4gs %9.4gs | %6.1fx\n",
			sp[i].Nodes,
			sp[i].FactorSeconds, bl[i].FactorSeconds,
			sp[i].SolveSeconds, bl[i].SolveSeconds,
			bl[i].FactorSeconds/sp[i].FactorSeconds)
	}
	fmt.Println("\n(the best ranks-per-node configuration is chosen per point, as in the paper)")
}
