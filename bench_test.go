package sympack

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5). Each Benchmark function corresponds to one exhibit (see
// DESIGN.md's experiment index); run them all with
//
//	go test -bench=. -benchmem
//
// Figure-series rows are emitted through b.Log (visible with -v) and the
// headline numbers are attached as custom benchmark metrics, so the shapes
// the paper reports — who wins, by what factor, where curves bend — are
// visible straight from the bench output. cmd/benchfig prints the same
// series standalone.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sympack/internal/blas"
	"sympack/internal/des"
	"sympack/internal/faults"
	"sympack/internal/gen"
	"sympack/internal/gpu"
	"sympack/internal/machine"
	"sympack/internal/matrix"
	"sympack/internal/ordering"
	"sympack/internal/simnet"
	"sympack/internal/symbolic"
)

// ------------------------------------------------------ shared problems ----

type analyzedProblem struct {
	name string
	a    *matrix.SparseSym
	st   *symbolic.Structure
	tg   *symbolic.TaskGraph
}

var (
	problemOnce  sync.Once
	benchProblem map[string]*analyzedProblem
)

// problems returns the three evaluation matrices at bench scale, analyzed
// once and shared by all figure benchmarks.
func problems(b *testing.B) map[string]*analyzedProblem {
	b.Helper()
	problemOnce.Do(func() {
		build := map[string]*matrix.SparseSym{
			// Structural regimes of Table 1, sized so a full sweep stays
			// tractable in a test harness.
			"flan":    gen.Flan3D(10, 10, 10, 1565),
			"bone":    gen.Bone3D(22, 22, 22, 0.35, 10),
			"thermal": gen.Thermal2D(256, 256, 12, 2),
		}
		benchProblem = map[string]*analyzedProblem{}
		for name, a := range build {
			st, _, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions())
			if err != nil {
				panic(err)
			}
			benchProblem[name] = &analyzedProblem{
				name: name, a: a, st: st, tg: symbolic.BuildTaskGraph(st),
			}
		}
	})
	return benchProblem
}

// ----------------------------------------------------------- Table 1 ----

// BenchmarkTable1MatrixStats regenerates Table 1: the characteristics of
// the three evaluation matrices (synthetic analogues at bench scale).
func BenchmarkTable1MatrixStats(b *testing.B) {
	var rows []gen.Stats
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, p := range gen.Table1Problems() {
			m := p.Build(2)
			rows = append(rows, gen.StatsOf(p.Name, p.Description, m))
		}
	}
	b.Log("Table 1: Name | n | nnz")
	for _, r := range rows {
		b.Logf("  %-12s %8d %12d", r.Name, r.N, r.Nnz)
	}
}

// ------------------------------------------------------------ Figure 5 ----

// BenchmarkFig5MemoryKinds regenerates Figure 5: RMA get flood bandwidth
// into GPU memory for native memory kinds, the reference (host-staged)
// implementation, and CUDA-aware MPI_Get, across payload sizes.
func BenchmarkFig5MemoryKinds(b *testing.B) {
	net := simnet.New(machine.Perlmutter())
	sizes := []int64{16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
	const window = 64
	var nat, ref, mpi float64
	for i := 0; i < b.N; i++ {
		for _, sz := range sizes {
			nat = net.Bandwidth(simnet.PathGDR, sz, window)
			ref = net.Bandwidth(simnet.PathStaged, sz, window)
			mpi = net.Bandwidth(simnet.PathMPIGet, sz, window)
		}
	}
	b.Log("Figure 5: size | native MiB/s | reference | MPI | nat/ref | nat/MPI")
	for _, sz := range sizes {
		n := net.Bandwidth(simnet.PathGDR, sz, window)
		r := net.Bandwidth(simnet.PathStaged, sz, window)
		m := net.Bandwidth(simnet.PathMPIGet, sz, window)
		b.Logf("  %8d %12.1f %12.1f %12.1f %8.2f %8.2f",
			sz, n/(1<<20), r/(1<<20), m/(1<<20), n/r, n/m)
	}
	b.ReportMetric(nat/ref, "native/ref@4MiB")
	b.ReportMetric(nat/mpi, "native/mpi@4MiB")
}

// ------------------------------------------------------------ Figure 6 ----

// BenchmarkFig6WorkloadSplit regenerates Figure 6: the number of
// BLAS/LAPACK calls executed on the CPU versus the GPU for a factorization
// and solve of the Flan analogue with 4 UPC++ processes and 4 GPUs (rank 0
// reported, as in the paper).
func BenchmarkFig6WorkloadSplit(b *testing.B) {
	a := gen.Flan3D(7, 7, 7, 1565)
	var f *Factor
	for i := 0; i < b.N; i++ {
		var err error
		f, err = Factorize(a, Options{Ranks: 4, RanksPerNode: 4, GPUsPerNode: 4})
		if err != nil {
			b.Fatal(err)
		}
		rhs := make([]float64, a.N)
		for j := range rhs {
			rhs[j] = 1
		}
		if _, err := f.SolveDistributed(rhs); err != nil {
			b.Fatal(err)
		}
	}
	r0 := f.Stats.PerRank[0]
	b.Log("Figure 6: op | CPU calls | GPU calls (rank 0)")
	var cpuTot, gpuTot int64
	for op := 0; op < machine.NumOps; op++ {
		b.Logf("  %-6s %8d %8d", machine.Op(op), r0.CPU[op], r0.GPU[op])
		cpuTot += r0.CPU[op]
		gpuTot += r0.GPU[op]
	}
	b.ReportMetric(float64(cpuTot), "cpu-calls")
	b.ReportMetric(float64(gpuTot), "gpu-calls")
}

// ------------------------------------------------- Figures 7–12 (sweeps) ----

// runScalingFigure executes a full strong-scaling sweep for one matrix and
// one phase and reports the paper's series.
func runScalingFigure(b *testing.B, prob string, solve bool) {
	p := problems(b)[prob]
	var sp, bl []des.ScalingPoint
	for i := 0; i < b.N; i++ {
		var err error
		sp, err = des.StrongScaling(p.st, p.tg, des.DefaultSweep(des.SymPACK))
		if err != nil {
			b.Fatal(err)
		}
		bl, err = des.StrongScaling(p.st, p.tg, des.DefaultSweep(des.Baseline))
		if err != nil {
			b.Fatal(err)
		}
	}
	phase := "factorization"
	if solve {
		phase = "solve"
	}
	b.Logf("%s %s strong scaling (n=%d): nodes | symPACK | PaStiX-like | speedup", prob, phase, p.a.N)
	var worst, best = 1e9, 0.0
	for i := range sp {
		spT, blT := sp[i].FactorSeconds, bl[i].FactorSeconds
		if solve {
			spT, blT = sp[i].SolveSeconds, bl[i].SolveSeconds
		}
		ratio := blT / spT
		if ratio < worst {
			worst = ratio
		}
		if ratio > best {
			best = ratio
		}
		b.Logf("  %2d %12.5gs %12.5gs %8.2fx", sp[i].Nodes, spT, blT, ratio)
		if ratio <= 1 {
			b.Errorf("nodes=%d: symPACK (%.4gs) did not beat the baseline (%.4gs)", sp[i].Nodes, spT, blT)
		}
	}
	b.ReportMetric(worst, "min-speedup")
	b.ReportMetric(best, "max-speedup")
}

// BenchmarkFig7FactorFlan regenerates Figure 7 (factorization, Flan).
func BenchmarkFig7FactorFlan(b *testing.B) { runScalingFigure(b, "flan", false) }

// BenchmarkFig8SolveFlan regenerates Figure 8 (solve, Flan).
func BenchmarkFig8SolveFlan(b *testing.B) { runScalingFigure(b, "flan", true) }

// BenchmarkFig9FactorBone regenerates Figure 9 (factorization, boneS10).
func BenchmarkFig9FactorBone(b *testing.B) { runScalingFigure(b, "bone", false) }

// BenchmarkFig10SolveBone regenerates Figure 10 (solve, boneS10).
func BenchmarkFig10SolveBone(b *testing.B) { runScalingFigure(b, "bone", true) }

// BenchmarkFig11FactorThermal regenerates Figure 11 (factorization,
// thermal2).
func BenchmarkFig11FactorThermal(b *testing.B) { runScalingFigure(b, "thermal", false) }

// BenchmarkFig12SolveThermal regenerates Figure 12 (solve, thermal2).
func BenchmarkFig12SolveThermal(b *testing.B) { runScalingFigure(b, "thermal", true) }

// ------------------------------------------------------------ ablations ----

// BenchmarkAblationMemoryKinds measures what native memory kinds buy the
// factorization: the same symPACK sweep with GDR disabled (reference
// implementation), the in-system counterpart of Fig. 5.
func BenchmarkAblationMemoryKinds(b *testing.B) {
	p := problems(b)["flan"]
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfgOn := des.Config{
			Solver: des.SymPACK, Nodes: 16, RanksPerNode: 4, GPUsPerNode: 4,
			Machine: machine.Perlmutter(), Thresholds: gpu.DefaultThresholds(),
		}
		cfgOff := cfgOn
		cfgOff.Machine = machine.Perlmutter().WithoutGDR()
		on, err := des.Simulate(p.st, p.tg, cfgOn)
		if err != nil {
			b.Fatal(err)
		}
		off, err := des.Simulate(p.st, p.tg, cfgOff)
		if err != nil {
			b.Fatal(err)
		}
		with, without = on.FactorSeconds, off.FactorSeconds
	}
	b.Logf("16 nodes, Flan: native kinds %.5gs vs reference %.5gs (%.2fx)",
		with, without, without/with)
	b.ReportMetric(without/with, "gdr-speedup")
}

// BenchmarkAblationOffloadHeuristic compares the paper's hybrid per-op
// thresholds against GPU-nothing and GPU-everything policies — the
// trade-off §4.2 argues for. The dense-supernode problem (flan) shows why
// CPU-only loses; the thin-supernode problem (thermal) shows why
// GPU-everything loses (launch overhead on small buffers).
func BenchmarkAblationOffloadHeuristic(b *testing.B) {
	type row struct{ hybrid, cpuOnly, gpuAll float64 }
	results := map[string]row{}
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"flan", "thermal"} {
			p := problems(b)[name]
			base := des.Config{
				Solver: des.SymPACK, Nodes: 4, RanksPerNode: 4, GPUsPerNode: 4,
				Machine: machine.Perlmutter(), Thresholds: gpu.DefaultThresholds(),
			}
			var r row
			res, err := des.Simulate(p.st, p.tg, base)
			if err != nil {
				b.Fatal(err)
			}
			r.hybrid = res.FactorSeconds

			noGPU := base
			noGPU.GPUsPerNode = 0
			res, err = des.Simulate(p.st, p.tg, noGPU)
			if err != nil {
				b.Fatal(err)
			}
			r.cpuOnly = res.FactorSeconds

			all := base
			all.Thresholds = gpu.Thresholds{Potrf: 1, Trsm: 1, Syrk: 1, Gemm: 1}
			res, err = des.Simulate(p.st, p.tg, all)
			if err != nil {
				b.Fatal(err)
			}
			r.gpuAll = res.FactorSeconds
			results[name] = r
		}
	}
	for name, r := range results {
		b.Logf("4 nodes, %s factorization: hybrid %.5gs | cpu-only %.5gs | gpu-everything %.5gs",
			name, r.hybrid, r.cpuOnly, r.gpuAll)
	}
	// Dense supernodes: offload must pay off.
	if f := results["flan"]; f.hybrid >= f.cpuOnly {
		b.Errorf("flan: hybrid (%.4gs) should beat cpu-only (%.4gs)", f.hybrid, f.cpuOnly)
	}
	// Thin supernodes: indiscriminate offload must lose to the hybrid.
	if th := results["thermal"]; th.hybrid >= th.gpuAll {
		b.Errorf("thermal: hybrid (%.4gs) should beat gpu-everything (%.4gs)", th.hybrid, th.gpuAll)
	}
	b.ReportMetric(results["flan"].cpuOnly/results["flan"].hybrid, "flan-vs-cpu-only")
	b.ReportMetric(results["thermal"].gpuAll/results["thermal"].hybrid, "thermal-vs-gpu-everything")
}

// BenchmarkAblationOrdering quantifies the fill-reducing ordering's effect
// on factor size and flops (why the paper runs Scotch).
func BenchmarkAblationOrdering(b *testing.B) {
	a := gen.Laplace3D(14, 14, 14)
	kinds := []ordering.Kind{ordering.Natural, ordering.RCM, ordering.MinDegree, ordering.NestedDissection}
	results := map[ordering.Kind]*symbolic.Structure{}
	for i := 0; i < b.N; i++ {
		for _, k := range kinds {
			st, _, err := symbolic.Analyze(a, k, symbolic.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			results[k] = st
		}
	}
	b.Log("ordering | nnz(L) | flops")
	for _, k := range kinds {
		st := results[k]
		b.Logf("  %-10v %10d %12.3g", k, st.NnzL, float64(st.FactorFlop))
	}
	nd, nat := results[ordering.NestedDissection], results[ordering.Natural]
	b.ReportMetric(float64(nat.NnzL)/float64(nd.NnzL), "nd-fill-gain")
}

// BenchmarkAblationRelaxation measures supernode amalgamation's effect on
// task-graph size and modeled time (the DESIGN.md §3 design choice).
func BenchmarkAblationRelaxation(b *testing.B) {
	a := gen.Thermal2D(128, 128, 6, 2)
	var strictT, relaxT float64
	var strictTasks, relaxTasks int
	for i := 0; i < b.N; i++ {
		for _, relax := range []bool{false, true} {
			opt := symbolic.Options{MaxSupernodeSize: 128}
			if relax {
				opt.RelaxRatio = 0.25
			}
			st, _, err := symbolic.Analyze(a, ordering.NestedDissection, opt)
			if err != nil {
				b.Fatal(err)
			}
			tg := symbolic.BuildTaskGraph(st)
			r, err := des.Simulate(st, tg, des.Config{
				Solver: des.SymPACK, Nodes: 4, RanksPerNode: 4, GPUsPerNode: 4,
				Machine: machine.Perlmutter(), Thresholds: gpu.DefaultThresholds(),
			})
			if err != nil {
				b.Fatal(err)
			}
			if relax {
				relaxT, relaxTasks = r.FactorSeconds, r.Tasks
			} else {
				strictT, strictTasks = r.FactorSeconds, r.Tasks
			}
		}
	}
	b.Logf("thermal, 4 nodes: strict %.5gs (%d tasks) vs relaxed %.5gs (%d tasks)",
		strictT, strictTasks, relaxT, relaxTasks)
	b.ReportMetric(strictT/relaxT, "relaxation-speedup")
}

// --------------------------------------------------------- microbenches ----

// BenchmarkKernelGemm measures the pure-Go GEMM kernel at a block size
// typical of the solver's update tasks.
func BenchmarkKernelGemm(b *testing.B) {
	const m, n, k = 96, 64, 64
	a := make([]float64, m*k)
	bb := make([]float64, n*k)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = float64(i%7) - 3
	}
	for i := range bb {
		bb[i] = float64(i%5) - 2
	}
	b.SetBytes(int64(8 * (m*k + n*k + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.Gemm(blas.NoTrans, blas.Transpose, m, n, k, 1, a, m, bb, n, 0, c, m)
	}
	b.ReportMetric(float64(2*m*n*k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "gflops")
}

// BenchmarkFactorizeEndToEnd measures a complete real factorization (the
// engine, not the model) of a mid-size problem on 4 ranks.
func BenchmarkFactorizeEndToEnd(b *testing.B) {
	a := gen.Laplace3D(10, 10, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(a, Options{Ranks: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkersScaling measures the intra-rank worker pool (DESIGN.md
// §9) on a real factorization: one rank, 1/2/4/8 executor goroutines over
// the largest end-to-end problem. The EXPERIMENTS.md workers-scaling table
// is produced from this benchmark. Kernel-compute scaling is bounded by
// GOMAXPROCS, so the pure-CPU group shows speedup only on multi-core hosts;
// the stall group injects real-time progress-stream stalls (an OS hiccup on
// the UPC++ progress thread) and shows the pool's second win — the
// dedicated progress goroutine absorbs the stalls while executors keep
// computing — which holds at any core count.
func BenchmarkWorkersScaling(b *testing.B) {
	a := gen.Laplace3D(12, 12, 12)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cpu/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Factorize(a, Options{Ranks: 1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("stalls/workers=%d", w), func(b *testing.B) {
			plan := FaultPlan{Seed: 7, StallWindow: 200 * time.Microsecond}
			plan.Rate[faults.RankStall] = 0.05
			for i := 0; i < b.N; i++ {
				if _, err := Factorize(a, Options{Ranks: 1, Workers: w, Faults: &plan}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveEndToEnd measures the distributed triangular solve.
func BenchmarkSolveEndToEnd(b *testing.B) {
	a := gen.Laplace3D(10, 10, 10)
	f, err := Factorize(a, Options{Ranks: 4})
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.SolveDistributed(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSymbolicAnalysis measures the symbolic phase alone.
func BenchmarkSymbolicAnalysis(b *testing.B) {
	a := gen.Thermal2D(128, 128, 6, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScheduling compares the engine's RTQ policies (the
// paper's §3.4 flags scheduling-policy evaluation as future work) on a
// real multi-rank factorization.
func BenchmarkAblationScheduling(b *testing.B) {
	a := gen.Bone3D(12, 12, 12, 0.35, 10)
	for _, pol := range []SchedulingPolicy{SchedFIFO, SchedLIFO, SchedCriticalPath} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Factorize(a, Options{Ranks: 8, Scheduling: pol}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAnalyticThresholds compares the brute-force-tuned
// thresholds with the analytically derived ones (§6 future work) on a real
// factorization.
func BenchmarkAblationAnalyticThresholds(b *testing.B) {
	a := gen.Flan3D(7, 7, 7, 1565)
	configs := map[string]gpu.Thresholds{
		"tuned":    gpu.DefaultThresholds(),
		"analytic": gpu.AnalyticThresholds(machine.Perlmutter()),
	}
	for name := range configs {
		th := configs[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Factorize(a, Options{
					Ranks: 4, RanksPerNode: 4, GPUsPerNode: 4, Thresholds: &th,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweepProblemSize addresses §6's "how does symPACK perform on
// smaller problem sizes": modeled factorization time and baseline speedup
// across problem scales at a fixed 4 nodes.
func BenchmarkSweepProblemSize(b *testing.B) {
	sizes := []int{6, 9, 12}
	type pt struct {
		n      int
		sp, bl float64
	}
	var rows []pt
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, s := range sizes {
			a := gen.Flan3D(s, s, s, 1565)
			st, _, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			tg := symbolic.BuildTaskGraph(st)
			cfg := des.Config{
				Solver: des.SymPACK, Nodes: 4, RanksPerNode: 4, GPUsPerNode: 4,
				Machine: machine.Perlmutter(), Thresholds: gpu.DefaultThresholds(),
			}
			sp, err := des.Simulate(st, tg, cfg)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Solver = des.Baseline
			bl, err := des.Simulate(st, tg, cfg)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, pt{n: a.N, sp: sp.FactorSeconds, bl: bl.FactorSeconds})
		}
	}
	b.Log("size sweep (4 nodes): n | symPACK | baseline | speedup")
	for _, r := range rows {
		b.Logf("  %6d %10.5gs %10.5gs %6.2fx", r.n, r.sp, r.bl, r.bl/r.sp)
	}
}

// BenchmarkSweepSparsity addresses §6's "problems with varying sparsity
// levels": the thermal generator at increasing void counts thins the
// matrix; modeled times and offload shares across the range.
func BenchmarkSweepSparsity(b *testing.B) {
	type pt struct {
		nnzPerRow float64
		sp        float64
		gpuShare  float64
	}
	var rows []pt
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, voids := range []int{0, 8, 24} {
			a := gen.Thermal2D(96, 96, voids, 2)
			st, _, err := symbolic.Analyze(a, ordering.NestedDissection, symbolic.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			tg := symbolic.BuildTaskGraph(st)
			res, err := des.Simulate(st, tg, des.Config{
				Solver: des.SymPACK, Nodes: 4, RanksPerNode: 4, GPUsPerNode: 4,
				Machine: machine.Perlmutter(), Thresholds: gpu.DefaultThresholds(),
			})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, pt{
				nnzPerRow: float64(a.NnzFull()) / float64(a.N),
				sp:        res.FactorSeconds,
				gpuShare:  res.GPUTaskShare,
			})
		}
	}
	b.Log("sparsity sweep (4 nodes): nnz/row | factor time | offloaded share")
	for _, r := range rows {
		b.Logf("  %6.2f %10.5gs %8.3f", r.nnzPerRow, r.sp, r.gpuShare)
	}
}

// BenchmarkAblationMapping quantifies §3.3's argument: the 2D block-cyclic
// distribution versus a 1D column distribution for the same fan-out
// algorithm.
func BenchmarkAblationMapping(b *testing.B) {
	p := problems(b)["flan"]
	var t2d, t1d float64
	for i := 0; i < b.N; i++ {
		cfg := des.Config{
			Solver: des.SymPACK, Nodes: 16, RanksPerNode: 4, GPUsPerNode: 4,
			Machine: machine.Perlmutter(), Thresholds: gpu.DefaultThresholds(),
		}
		r, err := des.Simulate(p.st, p.tg, cfg)
		if err != nil {
			b.Fatal(err)
		}
		t2d = r.FactorSeconds
		cfg.Use1DMap = true
		r, err = des.Simulate(p.st, p.tg, cfg)
		if err != nil {
			b.Fatal(err)
		}
		t1d = r.FactorSeconds
	}
	b.Logf("16 nodes, Flan factorization: 2D map %.5gs vs 1D map %.5gs (%.2fx)", t2d, t1d, t1d/t2d)
	if t1d <= t2d {
		b.Errorf("1D map (%.4gs) should be slower than 2D (%.4gs)", t1d, t2d)
	}
	b.ReportMetric(t1d/t2d, "2d-speedup")
}
