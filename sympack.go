// Package sympack is a Go reproduction of symPACK, the GPU-capable fan-out
// sparse Cholesky solver of Bellavita et al. (SC-W 2023,
// doi:10.1145/3624062.3624600). It factors sparse symmetric positive
// definite systems A = L·Lᵀ with an asynchronous task-based supernodal
// algorithm executed over a simulated UPC++-style PGAS runtime, optionally
// offloading large block operations to simulated GPUs with the paper's
// per-operation size thresholds and memory-kinds transfers.
//
// # Quick start
//
//	A := sympack.Laplace2D(100, 100)       // or build via sympack.NewBuilder
//	f, err := sympack.Factorize(A, sympack.Options{Ranks: 4})
//	if err != nil { ... }
//	x, err := f.Solve(b)
//
// The package also exposes the right-looking baseline solver used in the
// paper's evaluation (SolveOnce with UseBaseline), matrix generators for
// the paper's three test-problem regimes, Matrix Market / Rutherford-Boeing
// I/O, and the strong-scaling performance model that regenerates the
// paper's figures (see cmd/benchfig).
package sympack

import (
	"io"
	"time"

	"sympack/internal/baseline"
	"sympack/internal/core"
	"sympack/internal/faults"
	"sympack/internal/gen"
	"sympack/internal/gpu"
	"sympack/internal/krylov"
	"sympack/internal/machine"
	"sympack/internal/matrix"
	"sympack/internal/metrics"
	"sympack/internal/ordering"
	"sympack/internal/precond"
	"sympack/internal/symbolic"
	"sympack/internal/trace"
)

// Matrix is a sparse symmetric matrix holding the lower triangle in
// compressed sparse column form.
type Matrix = matrix.SparseSym

// Builder accumulates matrix entries in coordinate form; symmetric pairs
// are stored once (either triangle).
type Builder = matrix.COO

// NewBuilder returns an n×n coordinate-format builder.
func NewBuilder(n int) *Builder { return matrix.NewCOO(n) }

// OrderingKind selects a fill-reducing ordering for Options.Ordering.
type OrderingKind = ordering.Kind

// Ordering names re-exported for Options.
const (
	OrderNatural          = ordering.Natural
	OrderRCM              = ordering.RCM
	OrderMinDegree        = ordering.MinDegree
	OrderNestedDissection = ordering.NestedDissection // the Scotch stand-in
)

// Thresholds are the per-operation GPU offload sizes (§4.2 of the paper).
type Thresholds = gpu.Thresholds

// DefaultThresholds returns the tuned offload thresholds.
func DefaultThresholds() Thresholds { return gpu.DefaultThresholds() }

// AnalyticThresholds derives offload thresholds from a machine's cost
// model — the hardware-agnostic framework the paper's §6 calls for.
func AnalyticThresholds(m Machine) Thresholds { return gpu.AnalyticThresholds(m) }

// Fallback policies on device out-of-memory (§4.2).
const (
	FallbackCPU   = gpu.FallbackCPU
	FallbackError = gpu.FallbackError
)

// Options configures Factorize. The zero value runs a single-rank CPU
// factorization with nested-dissection ordering.
type Options = core.Options

// SchedulingPolicy orders the engine's ready task queue (paper §3.4).
type SchedulingPolicy = core.SchedulingPolicy

// Scheduling policies for Options.Scheduling.
const (
	SchedFIFO         = core.SchedFIFO
	SchedLIFO         = core.SchedLIFO
	SchedCriticalPath = core.SchedCriticalPath
)

// Formulation selects the task formulation for Options.Formulation: where
// each update's flops execute and whether computed contributions travel to
// the target block's owner (fan-out computes at the target; fan-in at the
// left source operand's owner; fan-both at the transposed operand's owner).
// All formulations are conformance-pinned to produce bit-identical factors.
type Formulation = core.Formulation

// Task formulations for Options.Formulation.
const (
	FanOut  = core.FanOut
	FanIn   = core.FanIn
	FanBoth = core.FanBoth
)

// ParseFormulation parses a formulation name ("fan-out", "fan-in",
// "fan-both", and common abbreviations) as accepted by the CLI flags.
func ParseFormulation(s string) (Formulation, error) { return symbolic.ParseFormulation(s) }

// MappingKind selects the block→process distribution for Options.Mapping.
type MappingKind = core.MappingKind

// Block mappings for Options.Mapping.
const (
	Map2DCyclic = core.Map2DCyclic // 2D block-cyclic (the paper's map(i,j))
	Map1DCols   = core.Map1DCols   // 1D column-cyclic
	MapSubtree  = core.MapSubtree  // proportional to elimination-subtree work
)

// ParseMapping parses a mapping name ("2d-cyclic", "1d-cols", "subtree",
// and common abbreviations) as accepted by the CLI flags.
func ParseMapping(s string) (MappingKind, error) { return symbolic.ParseMapping(s) }

// Factor is a completed Cholesky factorization; call Solve or SolveMulti.
type Factor = core.Factor

// Stats describes what a factorization did (kernel counts per rank, wall
// and modeled time, structural sizes).
type Stats = core.Stats

// ErrNotPositiveDefinite is returned when the input matrix is not SPD.
var ErrNotPositiveDefinite = core.ErrNotPositiveDefinite

// FaultPlan is a seeded deterministic fault-injection plan for the PGAS
// runtime and the simulated devices; set Options.Faults to enable chaos
// testing of a factorization.
type FaultPlan = faults.Plan

// FaultStats aggregates the fault and recovery counters of a run (see
// Stats.Faults and Factor.SolveStats.Faults).
type FaultStats = core.FaultStats

// HealthReport is the stall watchdog's structured per-rank diagnosis.
type HealthReport = core.HealthReport

// Typed failure taxonomy, re-exported so callers can branch with errors.Is
// against the facade alone.
var (
	ErrTransient    = core.ErrTransient
	ErrDeviceFailed = core.ErrDeviceFailed
	ErrLostSignal   = core.ErrLostSignal
	ErrStalled      = core.ErrStalled
	// ErrCanceled reports cooperative cancellation: Options.Context was
	// canceled or its deadline passed, and the factorization or solve
	// unwound cleanly at a task boundary (wraps the context cause).
	ErrCanceled = core.ErrCanceled
)

// DefaultChaosPlan returns a moderate plan exercising every recoverable
// fault class (permanent device death is opted into separately).
func DefaultChaosPlan(seed int64) FaultPlan { return faults.DefaultChaos(seed) }

// ParseFaultPlan builds a plan from a spec like
// "drop=0.02,dup=0.02,delay=0.05,transfer=0.02,oom=0.05,stall=0.002"
// (class=rate or class=rate/limit; "all" covers every transient class).
func ParseFaultPlan(spec string, seed int64) (FaultPlan, error) {
	return faults.Parse(spec, seed)
}

// Factorize computes the sparse Cholesky factorization of a using the
// fan-out distributed algorithm of the paper.
func Factorize(a *Matrix, opt Options) (*Factor, error) {
	return core.Factorize(a, opt)
}

// Analysis is a reusable symbolic factorization: the ordering, supernode
// partition and block structure of a matrix's sparsity pattern. Matrices
// sharing a pattern (e.g. A − σI for varying σ, the PEXSI workload of
// §5.3) can be factored repeatedly against one Analysis.
type Analysis struct {
	st  *symbolic.Structure
	opt Options
}

// Analyze runs the symbolic phase once for a matrix's sparsity pattern.
func Analyze(a *Matrix, opt Options) (*Analysis, error) {
	ord := opt.Ordering
	if ord == 0 {
		ord = ordering.NestedDissection
	}
	sopt := symbolic.DefaultOptions()
	if opt.Symbolic != nil {
		sopt = *opt.Symbolic
	}
	st, _, err := symbolic.Analyze(a, ord, sopt)
	if err != nil {
		return nil, err
	}
	return &Analysis{st: st, opt: opt}, nil
}

// NumSupernodes reports the supernode count of the analyzed structure.
func (an *Analysis) NumSupernodes() int { return an.st.NumSupernodes() }

// NnzFactor reports the factor's stored nonzeros (padding included).
func (an *Analysis) NnzFactor() int64 { return an.st.NnzL }

// Flops reports the factorization's floating-point operation count.
func (an *Analysis) Flops() int64 { return an.st.FactorFlop }

// Factorize numerically factors a matrix with this analysis's pattern. The
// matrix must have the same sparsity structure as the one analyzed.
func (an *Analysis) Factorize(a *Matrix) (*Factor, error) {
	pa, err := a.Permute(an.st.Perm)
	if err != nil {
		return nil, err
	}
	return core.FactorizeAnalyzed(an.st, pa, an.opt)
}

// LoadFactor reads a factor previously written with Factor.Save, ready to
// solve and compute selected inverses.
func LoadFactor(r io.Reader) (*Factor, error) { return core.LoadFactor(r) }

// SolveOnce factors and solves in one call, returning x with A·x = b.
func SolveOnce(a *Matrix, b []float64, opt Options) ([]float64, error) {
	f, err := Factorize(a, opt)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// ----------------------------------------------------- iterative solves ----

// Precision selects the numeric working precision of the factorization
// kernels for Options.Precision. PrecFP32 runs POTRF/TRSM/SYRK/GEMM in
// single precision (CPU only — the modeled device is fp64) and transparently
// retries in fp64 if a pivot breaks down under fp32 rounding; pair it with
// Factor.SolveRefined or SolveCG to recover fp64-quality solutions.
type Precision = core.Precision

// Precisions for Options.Precision.
const (
	PrecFP64 = core.PrecFP64
	PrecFP32 = core.PrecFP32
)

// ParsePrecision parses a precision name ("fp64"/"double", "fp32"/"single"/
// "mixed") as accepted by the CLI -precision flags.
func ParsePrecision(s string) (Precision, error) { return core.ParsePrecision(s) }

// PrecondKind selects a preconditioner for SolveCG.
type PrecondKind = precond.Kind

// Preconditioner kinds for CGOptions.Precond.
const (
	PrecondNone = precond.None // unpreconditioned CG
	PrecondIC   = precond.IC   // blocked incomplete Cholesky IC(k)
)

// ParsePrecondKind parses a preconditioner name ("none", "ic") as accepted
// by the CLI -solver flags.
func ParsePrecondKind(s string) (PrecondKind, error) { return precond.ParseKind(s) }

// CGOptions configures SolveCG.
type CGOptions struct {
	// Rtol is the relative convergence tolerance (0 = 1e-8); Atol an
	// absolute floor (0 = none); MaxIter the iteration budget (0 = 10·n,
	// capped at 10000).
	Rtol    float64
	Atol    float64
	MaxIter int
	// Precond selects the preconditioner (default PrecondNone).
	Precond PrecondKind
	// ICLevel is the IC(k) fill level when Precond is PrecondIC.
	ICLevel int
	// DropTol, when positive, magnitude-filters the matrix before the IC
	// level expansion.
	DropTol float64
	// RecordTrajectory retains the per-iteration residual norms in
	// CGResult.Trajectory (bit-identical across worker and rank counts).
	RecordTrajectory bool
	// Metrics, when non-nil, receives the sympack_iter_* series of the
	// solve (and of the preconditioner factorization).
	Metrics *MetricsRegistry
}

// CGResult reports a conjugate-gradient solve.
type CGResult = krylov.Result

// ICPreconditioner is a ready blocked IC(k) preconditioner; build one with
// NewICPreconditioner to amortize across SolveCG calls on one matrix.
type ICPreconditioner = precond.ICFactor

// NewICPreconditioner analyzes and factors an IC(k) preconditioner for a.
// The engine surface in opt (ranks, workers, formulation, mapping,
// precision) applies to the preconditioner's factorization.
func NewICPreconditioner(a *Matrix, level int, dropTol float64, opt Options) (*ICPreconditioner, error) {
	return precond.NewIC(a, precond.Options{Level: level, DropTol: dropTol, Core: opt})
}

// Iterative-solve failure taxonomy, re-exported for errors.Is.
var (
	// ErrIndefinite reports a CG breakdown: the operator or preconditioner
	// is not positive definite on the Krylov space.
	ErrIndefinite = krylov.ErrIndefinite
	// ErrNoConvergence reports iteration-budget exhaustion; the partial
	// CGResult is still returned.
	ErrNoConvergence = krylov.ErrNoConvergence
	// ErrPrecondBreakdown reports that the incomplete factorization broke
	// down at every diagonal shift.
	ErrPrecondBreakdown = precond.ErrBreakdown
)

// SolveCG solves A·x = b by (preconditioned) conjugate gradients. With
// cg.Precond = PrecondIC it builds a blocked IC(cg.ICLevel) factor through
// the distributed engine configured by opt and applies it each iteration;
// with PrecondNone opt only supplies the cancellation context. Residual
// trajectories are bit-identical across worker and rank counts.
func SolveCG(a *Matrix, b []float64, opt Options, cg CGOptions) (*CGResult, error) {
	kopt := krylov.Options{
		Rtol:             cg.Rtol,
		Atol:             cg.Atol,
		MaxIter:          cg.MaxIter,
		Ctx:              opt.Context,
		RecordTrajectory: cg.RecordTrajectory,
	}
	if cg.Metrics != nil {
		kopt.Metrics = metrics.NewIterMetrics(cg.Metrics)
	}
	if cg.Precond == PrecondIC {
		ic, err := NewICPreconditioner(a, cg.ICLevel, cg.DropTol, opt)
		if err != nil {
			return nil, err
		}
		kopt.Precond = ic
	}
	return krylov.Solve(a, b, kopt)
}

// BaselineFactor is a factorization computed by the right-looking baseline
// solver (the PaStiX-like comparator of the paper's §5.3).
type BaselineFactor = baseline.Factor

// FactorizeBaseline runs the right-looking baseline solver.
func FactorizeBaseline(a *Matrix, ord ordering.Kind) (*BaselineFactor, error) {
	return baseline.Factorize(a, baseline.Options{Ordering: ord})
}

// ------------------------------------------------------------- metrics ----

// MetricsRegistry is a typed metric registry (counters, gauges, fixed-
// bucket histograms); Factor.Metrics holds the merged job-wide registry of
// a completed factorization. Set Options.MetricsAddr to also serve it over
// HTTP while the run executes.
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time, JSON-friendly reading of a registry.
type MetricsSnapshot = metrics.Snapshot

// RunReport is the machine-readable summary of one solver run
// (BENCH_<cmd>_<ts>.json); see WriteRunReport.
type RunReport = metrics.RunReport

// MetricsFigure is one benchmark curve inside a RunReport.
type MetricsFigure = metrics.Figure

// MetricsPoint is one (node count, seconds) sample of a MetricsFigure.
type MetricsPoint = metrics.Point

// WriteMetricsText writes a snapshot in Prometheus text exposition format
// (v0.0.4), the same bytes the /metrics endpoint serves.
func WriteMetricsText(w io.Writer, snap MetricsSnapshot) error { return metrics.WriteText(w, snap) }

// WriteRunReport writes a run report as indented JSON.
func WriteRunReport(w io.Writer, rep *RunReport) error { return metrics.WriteRunReport(w, rep) }

// ReportFilename returns the canonical BENCH_<cmd>_<ts>.json name for a
// run report written at t.
func ReportFilename(cmd string, t time.Time) string { return metrics.ReportFilename(cmd, t) }

// TraceRecorder records per-task execution events; pass one via
// Options.Trace and export with WriteChromeTrace.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder whose clock starts now.
func NewTraceRecorder() *TraceRecorder { return trace.New() }

// SelInv is a selected inverse: A⁻¹ restricted to the factor's sparsity
// pattern (the PEXSI computation of the paper's §5.3); see
// Factor.SelectedInverse.
type SelInv = core.SelInv

// ResidualNorm returns ‖b − A·x‖₂/‖b‖₂.
func ResidualNorm(a *Matrix, x, b []float64) float64 {
	return core.ResidualNorm(a, x, b)
}

// ---------------------------------------------------------- generators ----

// Laplace2D returns the 5-point Laplacian on an nx×ny grid (SPD).
func Laplace2D(nx, ny int) *Matrix { return gen.Laplace2D(nx, ny) }

// Laplace3D returns the 7-point Laplacian on an nx×ny×nz grid (SPD).
func Laplace3D(nx, ny, nz int) *Matrix { return gen.Laplace3D(nx, ny, nz) }

// Flan3D generates a Flan_1565-like 3D elasticity problem (3 dof per node,
// dense supernodes).
func Flan3D(nx, ny, nz int, seed int64) *Matrix { return gen.Flan3D(nx, ny, nz, seed) }

// Bone3D generates a boneS10-like porous 3D structure.
func Bone3D(nx, ny, nz int, porosity float64, seed int64) *Matrix {
	return gen.Bone3D(nx, ny, nz, porosity, seed)
}

// Thermal2D generates a thermal2-like very sparse irregular problem.
func Thermal2D(nx, ny, voids int, seed int64) *Matrix {
	return gen.Thermal2D(nx, ny, voids, seed)
}

// RandomSPD returns a random SPD matrix with the given lower-triangle
// density.
func RandomSPD(n int, density float64, seed int64) *Matrix {
	return gen.RandomSPD(n, density, seed)
}

// ------------------------------------------------------------------ I/O ----

// ReadMatrixMarket parses a Matrix Market coordinate stream.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return matrix.ReadMatrixMarket(r) }

// WriteMatrixMarket writes a matrix in Matrix Market form.
func WriteMatrixMarket(w io.Writer, a *Matrix) error { return matrix.WriteMatrixMarket(w, a) }

// ReadRutherfordBoeing parses a Rutherford-Boeing symmetric matrix.
func ReadRutherfordBoeing(r io.Reader) (*Matrix, error) { return matrix.ReadRutherfordBoeing(r) }

// WriteRutherfordBoeing writes a matrix in Rutherford-Boeing form.
func WriteRutherfordBoeing(w io.Writer, a *Matrix, title string) error {
	return matrix.WriteRutherfordBoeing(w, a, title)
}

// ------------------------------------------------------------- machine ----

// Machine is a platform cost model for the simulated runtime.
type Machine = machine.Machine

// Perlmutter returns the NERSC Perlmutter GPU-node model used throughout
// the paper's evaluation.
func Perlmutter() Machine { return machine.Perlmutter() }
